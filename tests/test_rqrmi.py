"""Tests for the RQ-RMI learned range index.

The central property (Theorem A.13 / §3.3): after training, *every* key that
falls inside an indexed range must be found by the bounded secondary search —
the analytically computed error bound is a true worst-case bound.
"""

import numpy as np
import pytest

from repro.core.config import RQRMIConfig
from repro.core.rqrmi import RQRMI, RangeSet

FAST = RQRMIConfig(adam_epochs=80, initial_samples=256)


def random_disjoint_ranges(count, domain, seed=0, min_gap=1):
    rng = np.random.default_rng(seed)
    points = np.sort(rng.choice(domain, size=2 * count, replace=False))
    return [(int(points[2 * i]), int(points[2 * i + 1])) for i in range(count)]


class TestRangeSet:
    def test_scaling_and_locate(self):
        ranges = [(0, 9), (20, 29), (100, 199)]
        rs = RangeSet.from_integer_ranges(ranges, 1 << 8)
        assert len(rs) == 3
        assert rs.locate(rs.scale_key(5)) == 0
        assert rs.locate(rs.scale_key(25)) == 1
        assert rs.locate(rs.scale_key(150)) == 2
        assert rs.locate(rs.scale_key(15)) is None
        assert rs.locate(rs.scale_key(250)) is None

    def test_rejects_overlapping_ranges(self):
        with pytest.raises(ValueError):
            RangeSet.from_integer_ranges([(0, 10), (5, 20)], 1 << 8)

    def test_empty(self):
        rs = RangeSet.from_integer_ranges([], 1 << 8)
        assert len(rs) == 0
        assert rs.locate(0.5) is None


class TestTraining:
    def test_stage_widths_follow_config(self):
        ranges = random_disjoint_ranges(100, 1 << 20, seed=1)
        model = RQRMI.train(
            RangeSet.from_integer_ranges(ranges, 1 << 20),
            RQRMIConfig(stage_widths=[1, 4], adam_epochs=50),
        )
        assert model.stage_widths == [1, 4]

    def test_first_stage_must_have_width_one(self):
        ranges = random_disjoint_ranges(10, 1 << 16, seed=2)
        with pytest.raises(ValueError):
            RQRMI.train(
                RangeSet.from_integer_ranges(ranges, 1 << 16),
                RQRMIConfig(stage_widths=[2, 4]),
            )

    def test_training_report_populated(self):
        ranges = random_disjoint_ranges(200, 1 << 24, seed=3)
        model = RQRMI.train(RangeSet.from_integer_ranges(ranges, 1 << 24), FAST)
        report = model.report
        assert report.num_ranges == 200
        assert report.training_seconds > 0
        assert report.submodels_trained >= sum(model.stage_widths) - model.stage_widths[-1]
        assert len(report.error_bounds) == model.stage_widths[-1]

    def test_empty_rangeset_trains_trivially(self):
        model = RQRMI.train(RangeSet.from_integer_ranges([], 1 << 16), FAST)
        assert model.query(100).index is None

    def test_single_range(self):
        model = RQRMI.train(RangeSet.from_integer_ranges([(10, 20)], 1 << 16), FAST)
        assert model.query(15).index == 0
        assert model.query(9).index is None
        assert model.query(21).index is None


class TestLookupCorrectness:
    """The headline guarantee: bounded search always finds the right range."""

    @pytest.mark.parametrize("count,domain_bits,widths", [
        (64, 16, [1, 4]),
        (500, 32, [1, 4, 16]),
        (2000, 32, [1, 4, 32]),
    ])
    def test_every_boundary_and_midpoint_found(self, count, domain_bits, widths):
        domain = 1 << domain_bits
        ranges = random_disjoint_ranges(count, domain, seed=count)
        rs = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(rs, RQRMIConfig(stage_widths=widths, adam_epochs=80))
        for idx, (lo, hi) in enumerate(sorted(ranges)):
            for key in {lo, hi, (lo + hi) // 2}:
                assert model.query(key).index == idx

    def test_exhaustive_small_domain(self):
        # Small enough to check literally every key in the domain.
        domain = 1 << 10
        ranges = [(0, 30), (40, 99), (120, 120), (200, 450), (600, 1000)]
        rs = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(rs, RQRMIConfig(stage_widths=[1, 4], adam_epochs=80))
        for key in range(domain):
            expected = rs.locate(rs.scale_key(key))
            assert model.query(key).index == expected

    def test_non_matching_keys_return_none(self):
        domain = 1 << 20
        ranges = random_disjoint_ranges(100, domain, seed=9)
        rs = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(rs, FAST)
        rng = np.random.default_rng(10)
        for key in rng.integers(0, domain, size=300):
            expected = rs.locate(rs.scale_key(int(key)))
            assert model.query(int(key)).index == expected

    def test_error_bound_is_respected(self):
        domain = 1 << 24
        ranges = random_disjoint_ranges(500, domain, seed=11)
        rs = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(rs, FAST)
        for idx, (lo, hi) in enumerate(sorted(ranges)):
            for key in (lo, hi):
                lookup = model.query(key)
                assert abs(lookup.predicted_index - idx) <= lookup.error_bound

    def test_query_batch_matches_scalar(self):
        domain = 1 << 20
        ranges = random_disjoint_ranges(200, domain, seed=12)
        rs = RangeSet.from_integer_ranges(ranges, domain)
        model = RQRMI.train(rs, FAST)
        keys = np.random.default_rng(13).integers(0, domain, size=200)
        batch = model.query_batch(keys)
        for key, predicted in zip(keys, batch):
            scalar = model.query(int(key)).index
            expected = -1 if scalar is None else scalar
            assert predicted == expected


class TestErrorBoundAndRetraining:
    def test_tight_threshold_triggers_retraining_or_converges(self):
        domain = 1 << 24
        ranges = random_disjoint_ranges(800, domain, seed=14)
        rs = RangeSet.from_integer_ranges(ranges, domain)
        strict = RQRMI.train(
            rs, RQRMIConfig(stage_widths=[1, 4], error_threshold=8,
                            adam_epochs=80, max_retrain_attempts=2)
        )
        relaxed = RQRMI.train(
            rs, RQRMIConfig(stage_widths=[1, 4], error_threshold=256, adam_epochs=80)
        )
        # A stricter threshold can only lead to equal or more retraining work.
        assert strict.report.retrain_attempts >= relaxed.report.retrain_attempts

    def test_max_error_consistent_with_bounds(self):
        domain = 1 << 20
        ranges = random_disjoint_ranges(300, domain, seed=15)
        model = RQRMI.train(RangeSet.from_integer_ranges(ranges, domain), FAST)
        assert model.max_error == max(model.error_bounds)

    def test_size_bytes_scales_with_submodels(self):
        domain = 1 << 20
        ranges = random_disjoint_ranges(300, domain, seed=16)
        small = RQRMI.train(
            RangeSet.from_integer_ranges(ranges, domain),
            RQRMIConfig(stage_widths=[1, 4], adam_epochs=40),
        )
        large = RQRMI.train(
            RangeSet.from_integer_ranges(ranges, domain),
            RQRMIConfig(stage_widths=[1, 4, 16], adam_epochs=40),
        )
        assert large.size_bytes() > small.size_bytes()
        # 500K-rule models must stay within tens of KB (paper: 35KB); at this
        # small scale the model must be a few KB at most.
        assert large.size_bytes() < 10_000

    def test_statistics_keys(self):
        domain = 1 << 16
        ranges = random_disjoint_ranges(50, domain, seed=17)
        model = RQRMI.train(RangeSet.from_integer_ranges(ranges, domain), FAST)
        stats = model.statistics()
        for key in ("num_ranges", "stage_widths", "max_error", "size_bytes",
                    "training_seconds", "converged"):
            assert key in stats
