"""Property tests (hypothesis) for the network serving path.

The invariant is the one ``tests/test_flowcache_properties.py`` pins for the
in-process cache, lifted over the wire: for *arbitrary* interleavings of
concurrent classify bursts with inserts and removes through an
:class:`~repro.serving.server.AsyncServer`, no response is ever a stale or
wrong-priority match — every classify whose request was sent after an
update's ack must equal linear search over the rules live at that instant
(total order ``(priority, rule_id)``).  Classifies inside one burst run
concurrently (they coalesce into shared micro-batches), updates are the
sequence points; the update-queue contract makes exactly that pattern
well-defined.

The rule/packet universe is deliberately tiny (5-tuple values in 0..7) so
flows collide, rules overlap, and the flow cache in front of the engine has
real invalidation work to do.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClassificationEngine
from repro.rules.rule import Rule, RuleSet
from repro.serving import AsyncClient, AsyncServer, CachedEngine

VALUES = st.integers(min_value=0, max_value=7)
PACKETS = st.tuples(VALUES, VALUES, VALUES, VALUES, VALUES)
RANGES = st.tuples(
    *[st.tuples(VALUES, VALUES).map(lambda pair: tuple(sorted(pair)))] * 5
)

SCENARIO_DEADLINE = 60.0


def linear_best(rules, packet):
    best = None
    for rule in rules:
        if rule.matches(packet) and (
            best is None
            or (rule.priority, rule.rule_id) < (best.priority, best.rule_id)
        ):
            best = rule
    return best


def result_key(rule):
    return None if rule is None else (rule.priority, rule.rule_id)


def response_key(response):
    return (response["priority"], response["rule_id"]) if response["matched"] else None


@st.composite
def initial_rules(draw, min_rules=2, max_rules=5):
    ranges = draw(st.lists(RANGES, min_size=min_rules, max_size=max_rules))
    return [
        Rule(r, priority=index, rule_id=index) for index, r in enumerate(ranges)
    ]


#: One step: a burst of concurrent classifies, an insert, or a remove.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("classify"), st.lists(PACKETS, min_size=1, max_size=6)),
        st.tuples(st.just("insert"), RANGES),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=40)),
    ),
    min_size=1,
    max_size=12,
)


async def drive_server(rules, ops, capacity):
    """Run the op sequence against a served cached engine, checking every
    response against ground truth over the live rules."""
    live = {rule.rule_id: rule for rule in rules}
    engine = CachedEngine(
        ClassificationEngine.build(
            RuleSet(list(rules), name="prop"), classifier="tss"
        ),
        capacity=capacity,
    )
    next_priority = len(rules)
    next_id = 100
    try:
        async with AsyncServer(engine, max_batch=4, max_delay_us=300) as server:
            await server.start("127.0.0.1", 0)
            async with await AsyncClient.connect(
                server.host, server.port
            ) as client:
                for op, payload in ops:
                    if op == "classify":
                        responses = await asyncio.gather(
                            *(client.classify(packet) for packet in payload)
                        )
                        rules_now = list(live.values())
                        for packet, response in zip(payload, responses):
                            expected = result_key(linear_best(rules_now, packet))
                            actual = response_key(response)
                            assert actual == expected, (
                                f"stale/wrong match for {packet}: "
                                f"{actual} != {expected}"
                            )
                    elif op == "insert":
                        rule = Rule(
                            payload, priority=next_priority, rule_id=next_id
                        )
                        next_priority += 1
                        next_id += 1
                        await client.insert(rule)
                        live[rule.rule_id] = rule
                    else:  # remove
                        present = payload in live
                        assert await client.remove(payload) == present
                        live.pop(payload, None)
    finally:
        engine.close()


@settings(max_examples=20, deadline=None)
@given(
    rules=initial_rules(),
    ops=OPS,
    capacity=st.integers(min_value=0, max_value=4),
)
def test_served_interleavings_never_return_stale_match(rules, ops, capacity):
    async def scenario():
        await asyncio.wait_for(
            drive_server(rules, ops, capacity), timeout=SCENARIO_DEADLINE
        )

    asyncio.run(scenario())
