"""Tests for the ClassificationEngine serving API, registry and batch lookups."""

import pytest

from repro.classifiers import (
    UnknownClassifierError,
    available_classifiers,
    build_classifier,
    resolve_classifier,
)
from repro.core.nuevomatch import NuevoMatch
from repro.engine import ClassificationEngine
from repro.rules.rule import Rule

from _helpers import fast_nm_config


def _build_by_name(name, ruleset):
    if name == "nm":
        return NuevoMatch.build(
            ruleset, remainder_classifier="tm", config=fast_nm_config()
        )
    return build_classifier(name, ruleset)


@pytest.fixture(scope="module", params=available_classifiers())
def named_classifier(request, acl_small):
    return _build_by_name(request.param, acl_small)


def _match_key(rule):
    return None if rule is None else (rule.rule_id, rule.priority)


class TestBatchEquivalence:
    """classify_batch must return exactly what per-packet classify returns."""

    def test_batch_matches_sequential_on_matching_packets(
        self, named_classifier, acl_small
    ):
        packets = acl_small.sample_packets(150, seed=21)
        batch = named_classifier.classify_batch(packets)
        assert len(batch) == len(packets)
        for packet, batched in zip(packets, batch):
            sequential = named_classifier.classify_traced(packet)
            assert _match_key(batched.rule) == _match_key(sequential.rule)
            assert batched.trace == sequential.trace

    def test_batch_matches_oracle_on_random_packets(self, named_classifier, acl_small):
        import random

        rng = random.Random(22)
        packets = [
            tuple(rng.randint(0, spec.max_value) for spec in acl_small.schema)
            for _ in range(100)
        ]
        batch = named_classifier.classify_batch(packets)
        for packet, batched in zip(packets, batch):
            expected = acl_small.match(packet)
            assert (expected is None) == (batched.rule is None)
            if expected is not None:
                assert batched.rule.priority == expected.priority

    def test_empty_batch(self, named_classifier):
        assert named_classifier.classify_batch([]) == []


class TestRegistryErrors:
    def test_unknown_name_raises_with_listing(self, acl_small):
        with pytest.raises(UnknownClassifierError, match="available:"):
            build_classifier("does-not-exist", acl_small)

    def test_unknown_is_value_error(self, acl_small):
        with pytest.raises(ValueError):
            build_classifier("does-not-exist", acl_small)

    def test_nuevomatch_unknown_remainder_lists_aliases(self, acl_small):
        with pytest.raises(ValueError, match=r"tm \(aka tuplemerge\)"):
            NuevoMatch.build(acl_small, remainder_classifier="bogus")

    def test_nuevomatch_rejects_itself_as_remainder(self, acl_small):
        with pytest.raises(ValueError, match="own remainder"):
            NuevoMatch.build(acl_small, remainder_classifier="nm")

    def test_duplicate_registration_rejected(self):
        from repro.classifiers.registry import register

        with pytest.raises(ValueError, match="already registered"):

            @register("tm")
            class Impostor:  # pragma: no cover - never instantiated
                pass


class TestEngineFacade:
    @pytest.fixture(scope="class")
    def engine(self, acl_small):
        return ClassificationEngine.build(
            acl_small,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
            metadata={"origin": "test"},
        )

    def test_classify_matches_oracle(self, engine, acl_small):
        assert engine.verify(acl_small.sample_packets(100, seed=23)) == 100

    def test_serve_batches_cover_all_packets(self, engine, acl_small):
        packets = acl_small.sample_packets(100, seed=24)
        reports = list(engine.serve(packets, batch_size=32))
        assert [len(report) for report in reports] == [32, 32, 32, 4]
        assert sum(report.matched for report in reports) == 100
        aggregate = reports[0].trace
        assert aggregate.total_accesses > 0

    def test_serve_rejects_bad_batch_size_eagerly(self, engine):
        # The validation must fire at the call site, not on first iteration.
        with pytest.raises(ValueError):
            engine.serve([], batch_size=0)

    def test_batch_report_counts_matches_once(self, engine, acl_small):
        from repro.engine import BatchReport

        packets = acl_small.sample_packets(20, seed=29)
        report = BatchReport(engine.classify_batch(packets))
        assert report.matched == 20
        # The count is computed at construction, not by re-scanning the
        # results on every access: mutating the list must not change it.
        report.results.clear()
        assert report.matched == 20

    def test_statistics_carry_metadata(self, engine):
        stats = engine.statistics()
        assert stats["engine_metadata"] == {"origin": "test"}
        assert stats["name"] == "nm"

    def test_updates_require_updatable_classifier(self, engine):
        with pytest.raises(TypeError, match="does not support online updates"):
            engine.remove(0)

    def test_updates_delegate_for_updatable(self, acl_small):
        engine = ClassificationEngine.build(acl_small, classifier="tss")
        packet = acl_small.sample_packets(1, seed=25)[0]
        before = engine.classify(packet)
        assert before is not None
        wildcard = Rule(
            tuple(spec.full_range() for spec in acl_small.schema),
            priority=-1,
            action="drop",
            rule_id=10_000,
        )
        engine.insert(wildcard)
        assert engine.classify(packet).rule_id == 10_000
        assert engine.remove(10_000)
        assert engine.classify(packet).rule_id == before.rule_id


class TestPersistence:
    @pytest.mark.parametrize("name", [n for n in available_classifiers() if n != "nm"])
    def test_baseline_round_trip(self, name, acl_small, tmp_path):
        engine = ClassificationEngine.build(acl_small, classifier=name)
        path = tmp_path / f"{name}.engine.json"
        engine.save(path)
        restored = ClassificationEngine.load(path)
        assert restored.classifier_name == name
        packets = acl_small.sample_packets(100, seed=26)
        for original, loaded in zip(
            engine.classify_batch(packets), restored.classify_batch(packets)
        ):
            assert _match_key(original.rule) == _match_key(loaded.rule)
            assert original.trace == loaded.trace

    def test_nuevomatch_round_trip_bitwise_identical(self, acl_small, tmp_path):
        engine = ClassificationEngine.build(
            acl_small,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        )
        path = tmp_path / "nm.engine.json.gz"
        engine.save(path)
        restored = ClassificationEngine.load(path)
        # The restored model must be the trained one, not a retrain: identical
        # submodel weights and error bounds...
        for original_iset, loaded_iset in zip(
            engine.classifier.isets, restored.classifier.isets
        ):
            assert original_iset.model.error_bounds == loaded_iset.model.error_bounds
            for stage_a, stage_b in zip(
                original_iset.model.stages, loaded_iset.model.stages
            ):
                for submodel_a, submodel_b in zip(stage_a, stage_b):
                    assert submodel_a.to_dict() == submodel_b.to_dict()
        # ...and bitwise-identical batched classification on a 1k trace.
        packets = acl_small.sample_packets(1000, seed=27)
        for original, loaded in zip(
            engine.classify_batch(packets), restored.classify_batch(packets)
        ):
            assert _match_key(original.rule) == _match_key(loaded.rule)
            assert original.trace == loaded.trace

    def test_save_after_online_updates_persists_them(self, acl_small, tmp_path):
        engine = ClassificationEngine.build(acl_small, classifier="tm")
        packet = acl_small.sample_packets(1, seed=28)[0]
        wildcard = Rule(
            tuple(spec.full_range() for spec in acl_small.schema),
            priority=0,
            action="drop",
            rule_id=20_000,
        )
        engine.insert(wildcard)
        victim = next(rule for rule in acl_small if rule.rule_id not in (20_000,))
        assert engine.remove(victim.rule_id)
        path = tmp_path / "updated.engine.json"
        engine.save(path)
        restored = ClassificationEngine.load(path)
        assert restored.classify(packet).rule_id == 20_000
        assert victim.rule_id not in {rule.rule_id for rule in restored.ruleset}
        assert 20_000 in {rule.rule_id for rule in restored.ruleset}

    def test_load_rejects_future_format(self, acl_small, tmp_path):
        import json

        engine = ClassificationEngine.build(acl_small, classifier="linear")
        path = tmp_path / "engine.json"
        engine.save(path)
        document = json.loads(path.read_text())
        document["format"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported engine file format"):
            ClassificationEngine.load(path)

    @pytest.mark.parametrize("mutated", [999, 0, None, "1"])
    def test_load_rejects_mutated_classifier_state_version(
        self, mutated, acl_small, tmp_path
    ):
        # A snapshot whose *inner* classifier state carries a different
        # version tag must fail loudly instead of silently misloading.
        import json

        engine = ClassificationEngine.build(acl_small, classifier="tm")
        path = tmp_path / "engine.json"
        engine.save(path)
        document = json.loads(path.read_text())
        document["classifier"]["format"] = mutated
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported classifier state format"):
            ClassificationEngine.load(path)

    def test_load_rejects_mutated_nuevomatch_state_version(
        self, acl_small, tmp_path
    ):
        import json

        engine = ClassificationEngine.build(
            acl_small,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        )
        path = tmp_path / "engine.json"
        engine.save(path)
        document = json.loads(path.read_text())
        document["classifier"]["format"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported classifier state format"):
            ClassificationEngine.load(path)

    def test_state_rejects_wrong_kind(self, acl_small):
        clf = build_classifier("tm", acl_small)
        state = clf.to_state()
        with pytest.raises(ValueError, match="expected 'cs'"):
            resolve_classifier("cs").from_state(state, acl_small)
