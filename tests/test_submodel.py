"""Unit tests for the RQ-RMI submodel and its piece-wise-linear analysis."""

import numpy as np
import pytest

from repro.core.submodel import OUTPUT_EPSILON, Submodel


def linear_submodel(slope=1.0, intercept=0.0, hidden=8):
    """A submodel computing ``clip(slope * x + intercept)`` exactly."""
    w1 = np.zeros(hidden)
    b1 = np.zeros(hidden)
    w2 = np.zeros(hidden)
    w1[0] = 1.0          # ReLU(x) = x for x >= 0
    w2[0] = slope
    return Submodel(w1, b1, w2, intercept)


class TestForwardPass:
    def test_matches_manual_computation(self):
        rng = np.random.default_rng(0)
        model = Submodel(rng.normal(size=8), rng.normal(size=8), rng.normal(size=8), 0.3)
        x = 0.42
        hidden = np.maximum(model.w1 * x + model.b1, 0.0)
        expected = float(hidden @ model.w2 + model.b2)
        assert model.raw(x) == pytest.approx(expected)

    def test_output_trimmed_to_unit_interval(self):
        model = linear_submodel(slope=10.0, intercept=-3.0)
        assert model(0.0) == 0.0
        assert model(1.0) <= 1.0 - OUTPUT_EPSILON / 2
        assert 0.0 <= model(0.35) < 1.0

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        model = Submodel(rng.normal(size=8), rng.normal(size=8), rng.normal(size=8), -0.2)
        xs = rng.random(100)
        batch = model.predict_batch(xs)
        for x, y in zip(xs, batch):
            assert y == pytest.approx(model(float(x)))

    def test_bucket(self):
        model = linear_submodel(slope=1.0)
        assert model.bucket(0.0, 4) == 0
        assert model.bucket(0.3, 4) == 1
        assert model.bucket(0.99, 4) == 3
        # Outputs >= 1 are trimmed so the bucket never reaches the width.
        assert model.bucket(5.0, 4) == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Submodel(np.zeros(8), np.zeros(7), np.zeros(8), 0.0)


class TestTriggerInputs:
    def test_linear_model_has_only_boundaries(self):
        model = linear_submodel(slope=0.5, intercept=0.1)
        triggers = model.trigger_inputs()
        assert triggers[0] == 0.0 and triggers[-1] == 1.0
        # slope 0.5, intercept 0.1: N(x) in [0.1, 0.6], never clipped, and the
        # only ReLU kink is at x = 0 which is the domain boundary.
        assert len(triggers) == 2

    def test_relu_kinks_are_triggers(self):
        w1 = np.array([1.0, 1.0, 0.0, 0, 0, 0, 0, 0], dtype=float)
        b1 = np.array([-0.25, -0.5, 0, 0, 0, 0, 0, 0], dtype=float)
        w2 = np.array([1.0, 1.0, 0, 0, 0, 0, 0, 0], dtype=float)
        model = Submodel(w1, b1, w2, 0.0)
        triggers = model.trigger_inputs()
        assert any(abs(t - 0.25) < 1e-12 for t in triggers)
        assert any(abs(t - 0.5) < 1e-12 for t in triggers)

    def test_clipping_points_are_triggers(self):
        model = linear_submodel(slope=2.0, intercept=0.0)  # hits 1.0 at x=0.5
        triggers = model.trigger_inputs()
        assert any(abs(t - 0.5) < 1e-6 for t in triggers)

    def test_triggers_sorted_and_within_domain(self):
        rng = np.random.default_rng(3)
        model = Submodel(rng.normal(size=8) * 3, rng.normal(size=8), rng.normal(size=8), 0.1)
        triggers = model.trigger_inputs()
        assert triggers == sorted(triggers)
        assert all(0.0 <= t <= 1.0 for t in triggers)


class TestTransitionInputs:
    def test_identity_transitions_at_quantisation_levels(self):
        model = linear_submodel(slope=1.0)
        transitions = model.transition_inputs(4)
        for level in (0.25, 0.5, 0.75):
            assert any(abs(t - level) < 1e-9 for t in transitions)

    def test_bucket_constant_between_adjacent_transitions(self):
        rng = np.random.default_rng(4)
        model = Submodel(rng.normal(size=8) * 2, rng.normal(size=8), rng.normal(size=8), 0.2)
        width = 16
        transitions = model.transition_inputs(width)
        points = [0.0] + transitions + [1.0]
        for a, b in zip(points[:-1], points[1:]):
            if b - a < 1e-9:
                continue
            inner = np.linspace(a + (b - a) * 0.01, b - (b - a) * 0.01, 7)
            buckets = {model.bucket(float(x), width) for x in inner}
            assert len(buckets) == 1

    def test_invalid_width(self):
        model = linear_submodel()
        with pytest.raises(ValueError):
            model.transition_inputs(0)

    def test_max_error_on_points(self):
        model = linear_submodel(slope=1.0)
        points = np.array([0.1, 0.6, 0.9])
        true_idx = np.array([1, 6, 9])
        assert model.max_error_on_points(points, true_idx, 10) == 0
        assert model.max_error_on_points(points, np.array([3, 6, 9]), 10) == 2
        assert model.max_error_on_points(np.array([]), np.array([]), 10) == 0


class TestSerialisation:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        model = Submodel(rng.normal(size=8), rng.normal(size=8), rng.normal(size=8), 1.5)
        clone = Submodel.from_dict(model.to_dict())
        xs = rng.random(20)
        assert np.allclose(model.predict_batch(xs), clone.predict_batch(xs))

    def test_size_bytes_single_precision(self):
        model = Submodel.identity(8)
        # 3 * 8 weights + 1 bias, 4 bytes each.
        assert model.size_bytes() == 100

    def test_identity_model_tracks_input(self):
        model = Submodel.identity()
        for x in (0.0, 0.25, 0.7, 0.999):
            assert model(x) == pytest.approx(x, abs=1e-9)
