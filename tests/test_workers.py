"""Tests for the shared-memory shard-worker runtime and the ``"workers"``
executor of :class:`ShardedEngine`.

The runtime tests exercise the subsystem directly (lifecycle, snapshot
publication, crash detection, ring hygiene); the conformance tests pin the
``executor="workers"`` path to linear-search ground truth at several shard
counts, including interleaved inserts/removes so the update overlay is
applied on top of what the workers return through the rings.
"""

from __future__ import annotations

import glob
import threading

import numpy as np
import pytest

from repro.classifiers.linear import LinearSearchClassifier
from repro.engine import ClassificationEngine, results_to_arrays
from repro.rules.rule import Rule, RuleSet
from repro.serving import ShardedEngine, ShardWorkerRuntime, WorkerCrashed
from repro.serving.partitioning import partition_for_shards

SHARD_COUNTS = (1, 2, 4, 8)


def _key(rule):
    return None if rule is None else (rule.priority, rule.rule_id)


def _keys(results):
    return [_key(result.rule) for result in results]


def _packets_for(ruleset, matching=60, uniform=30, seed=33):
    import random

    packets = list(ruleset.sample_packets(matching, seed=seed))
    rng = random.Random(seed + 1)
    packets.extend(
        tuple(rng.randint(0, spec.max_value) for spec in ruleset.schema)
        for _ in range(uniform)
    )
    return packets


def _block_for(ruleset, **kwargs):
    return np.array(
        [tuple(packet) for packet in _packets_for(ruleset, **kwargs)],
        dtype=np.uint64,
    )


def _shard_engines(ruleset, shards):
    return [
        ClassificationEngine.build(
            RuleSet(list(part), schema=ruleset.schema), classifier="linear"
        )
        for part in partition_for_shards(ruleset, shards)
    ]


def _segments(prefix):
    return glob.glob(f"/dev/shm/{prefix}*")


class TestRuntime:
    def test_lifecycle_and_agreement(self, acl_small):
        engines = _shard_engines(acl_small, 2)
        block = _block_for(acl_small)
        runtime = ShardWorkerRuntime(slot_packets=32)  # force multi-slot pipelining
        try:
            runtime.start(engines)
            prefix = runtime._prefix
            assert _segments(prefix)  # rings + control + snapshots live
            outputs = runtime.classify_block(block)
            assert len(outputs) == 2
            for engine, (rule_ids, priorities, traces) in zip(engines, outputs):
                expected_ids, expected_pris = results_to_arrays(
                    engine.classify_batch(block.astype(np.int64))
                )
                np.testing.assert_array_equal(rule_ids, expected_ids)
                hits = rule_ids >= 0
                np.testing.assert_array_equal(priorities[hits], expected_pris[hits])
                assert (priorities[~hits] == 0).all()
                assert (traces >= 0).all() and traces.shape == (len(block), 5)
        finally:
            runtime.close()
        # Every shared-memory segment the runtime created is unlinked.
        assert _segments(prefix) == []
        runtime.close()  # idempotent

    def test_publish_swaps_engine_and_reclaims_snapshot(self, acl_small):
        engines = _shard_engines(acl_small, 1)
        packet = acl_small.sample_packets(1, seed=41)[0]
        block = np.array([tuple(packet)], dtype=np.uint64)
        runtime = ShardWorkerRuntime()
        try:
            runtime.start(engines)
            prefix = runtime._prefix
            before = runtime.classify_block(block)[0][0][0]
            assert before >= 0
            # Swap in an engine where only a full-range rule exists.
            shadow = Rule(
                tuple(spec.full_range() for spec in acl_small.schema),
                priority=5,
                rule_id=70_000,
            )
            swapped = ClassificationEngine.build(
                RuleSet([shadow], schema=acl_small.schema), classifier="linear"
            )
            assert runtime.publish(0, swapped) == 1
            assert runtime.generations() == [1]
            rule_ids, priorities, _ = runtime.classify_block(block)[0]
            assert rule_ids[0] == 70_000 and priorities[0] == 5
            # The generation-0 snapshot segment was unlinked on ack.
            assert not _segments(f"{prefix}s0g0")
        finally:
            runtime.close()

    def test_empty_block_and_bad_width(self, acl_small):
        runtime = ShardWorkerRuntime()
        try:
            runtime.start(_shard_engines(acl_small, 1))
            empty = runtime.classify_block(
                np.empty((0, len(acl_small.schema)), dtype=np.uint64)
            )
            assert [len(out[0]) for out in empty] == [0]
            with pytest.raises(ValueError, match="fields"):
                runtime.classify_block(np.zeros((3, 2), dtype=np.uint64))
            with pytest.raises(ValueError, match="2-dimensional"):
                runtime.classify_block(np.zeros(5, dtype=np.uint64))
        finally:
            runtime.close()
        with pytest.raises(RuntimeError, match="not running"):
            runtime.classify_block(np.zeros((1, 5), dtype=np.uint64))

    def test_start_guards(self, acl_small):
        runtime = ShardWorkerRuntime()
        with pytest.raises(ValueError, match="at least one shard"):
            runtime.start([])
        try:
            runtime.start(_shard_engines(acl_small, 1))
            with pytest.raises(RuntimeError, match="already started"):
                runtime.start(_shard_engines(acl_small, 1))
        finally:
            runtime.close()

    def test_killed_worker_raises_worker_crashed(self, acl_small):
        runtime = ShardWorkerRuntime()
        try:
            runtime.start(_shard_engines(acl_small, 1))
            block = _block_for(acl_small, matching=4, uniform=0)
            runtime.classify_block(block)
            runtime._processes[0].kill()
            runtime._processes[0].join(timeout=10.0)
            with pytest.raises(WorkerCrashed) as excinfo:
                runtime.classify_block(block)
            assert excinfo.value.shard == 0
        finally:
            runtime.close()


class TestWorkersExecutorConformance:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_agrees_with_linear_ground_truth(self, shards, acl_small):
        oracle = LinearSearchClassifier.build(acl_small)
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="linear", executor="workers"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                oracle.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", (1, 4))
    def test_interleaved_updates_agree_with_live_rules(self, shards, acl_small):
        """Inserts/removes interleaved with classifies through the rings:
        the overlay must win over whatever the workers' snapshots return."""
        import random

        rng = random.Random(77)
        with ShardedEngine.build(
            acl_small,
            shards=shards,
            classifier="linear",
            executor="workers",
            background_retraining=False,
            retrain_threshold=0.95,
        ) as engine:
            next_id = 80_000
            for round_ in range(6):
                if round_ % 2 == 0:
                    template = rng.choice(acl_small.rules)
                    engine.insert(
                        Rule(
                            template.ranges,
                            priority=rng.randint(0, 1000),
                            action="churn",
                            rule_id=next_id,
                        )
                    )
                    next_id += 1
                else:
                    engine.remove(rng.choice(acl_small.rules).rule_id)
                oracle = engine.ruleset  # live rules
                for packet in _packets_for(acl_small, matching=15, uniform=5, seed=round_):
                    batch = engine.classify_batch([packet])
                    assert _key(batch[0].rule) == _key(oracle.match(packet))

    def test_inline_retrain_republishes_snapshots(self, acl_small):
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="linear",
            executor="workers",
            background_retraining=False,
            retrain_threshold=0.05,
        ) as engine:
            packets = _packets_for(acl_small, matching=20, uniform=0, seed=91)
            engine.classify_batch(packets)  # starts the runtime at generation 0
            for index in range(40):
                template = acl_small.rules[index]
                engine.insert(
                    Rule(template.ranges, template.priority, "new", 90_000 + index)
                )
            assert engine.updates.retrains_triggered > 0
            assert engine.verify(acl_small.sample_packets(40, seed=92)) == 40
            # The retrained engines were republished, not served stale.
            assert max(engine._worker_runtime.generations()) > 0

    def test_swap_under_concurrent_load(self, acl_small):
        """Generation swaps racing classify_batch calls from another thread
        must never produce a wrong result or an exception."""
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="linear",
            executor="workers",
            background_retraining=False,
            retrain_threshold=0.05,
        ) as engine:
            packets = _packets_for(acl_small, matching=30, uniform=10, seed=13)
            errors: list[BaseException] = []
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    try:
                        results = engine.classify_batch(packets)
                        assert len(results) == len(packets)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                for index in range(60):
                    template = acl_small.rules[index % len(acl_small.rules)]
                    engine.insert(
                        Rule(template.ranges, template.priority, "new", 85_000 + index)
                    )
            finally:
                stop.set()
                thread.join(timeout=60.0)
            assert not errors
            assert engine.updates.retrains_triggered > 0
            assert engine.verify(acl_small.sample_packets(40, seed=14)) == 40

    def test_worker_crash_recovers_transparently(self, acl_small):
        with ShardedEngine.build(
            acl_small, shards=2, classifier="linear", executor="workers"
        ) as engine:
            packets = _packets_for(acl_small, matching=20, uniform=5, seed=21)
            expected = _keys(engine.classify_batch(packets))
            engine._worker_runtime._processes[1].kill()
            engine._worker_runtime._processes[1].join(timeout=10.0)
            # The runtime is rebuilt once and the call retried internally.
            assert _keys(engine.classify_batch(packets)) == expected


class TestClassifyBlock:
    def test_sharded_block_fast_path_matches_batch(self, acl_small):
        block = _block_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=2, classifier="linear", executor="workers"
        ) as engine:
            rule_ids, priorities = engine.classify_block(block)
            expected_ids, expected_pris = results_to_arrays(
                engine.classify_batch([tuple(int(v) for v in row) for row in block])
            )
            np.testing.assert_array_equal(rule_ids, expected_ids)
            np.testing.assert_array_equal(priorities, expected_pris)

    def test_sharded_block_overlay_falls_back(self, acl_small):
        block = _block_for(acl_small, matching=20, uniform=5)
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="linear",
            executor="workers",
            background_retraining=False,
            retrain_threshold=0.95,
        ) as engine:
            shadow = Rule(
                tuple(spec.full_range() for spec in acl_small.schema),
                priority=-10,
                rule_id=71_000,
            )
            engine.insert(shadow)
            rule_ids, priorities = engine.classify_block(block)
            assert (rule_ids == 71_000).all()
            assert (priorities == -10).all()

    def test_plain_engine_block_matches_batch(self, acl_small):
        engine = ClassificationEngine.build(acl_small, classifier="linear")
        block = _block_for(acl_small, matching=25, uniform=10)
        rule_ids, priorities = engine.classify_block(block)
        expected_ids, expected_pris = results_to_arrays(
            engine.classify_batch([tuple(int(v) for v in row) for row in block])
        )
        np.testing.assert_array_equal(rule_ids, expected_ids)
        np.testing.assert_array_equal(priorities, expected_pris)
        with pytest.raises(ValueError, match="2-dimensional"):
            engine.classify_block(block[0])
