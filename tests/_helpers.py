"""Shared non-fixture helpers for the test suite.

Lives in its own module (not ``conftest.py``) so test files can import it
explicitly: ``from _helpers import fast_nm_config``.  Importing helpers from
``conftest`` is fragile — when pytest collects both ``tests/`` and
``benchmarks/``, the name ``conftest`` resolves to whichever directory's
conftest was imported first.
"""

from __future__ import annotations

from repro.core.config import NuevoMatchConfig, RQRMIConfig

#: Fast RQ-RMI settings used across tests (fewer Adam epochs, small widths).
FAST_RQRMI = RQRMIConfig(adam_epochs=80, initial_samples=256)


def fast_nm_config(max_isets: int = 4, min_coverage: float = 0.05) -> NuevoMatchConfig:
    """A NuevoMatch configuration that trains in seconds on small rule-sets."""
    return NuevoMatchConfig(
        max_isets=max_isets,
        min_iset_coverage=min_coverage,
        rqrmi=FAST_RQRMI,
    )
