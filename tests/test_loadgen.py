"""Unit and integration tests for the open-loop load generator.

Covers the time-varying offered-rate profiles (ramp / burst schedules) and
pins the per-*packet* latency accounting of batched runs: ``completed``
counts packets, so percentiles must weight an N-packet batch N times.  The
percentile pin runs against a monkeypatched fake client so the latency mix
is exact and deterministic.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.engine import ClassificationEngine
from repro.rules import generate_classbench
from repro.serving import AsyncServer, ServerError
from repro.workloads import BurstProfile, RampProfile, open_loop_load
from repro.workloads import loadgen as loadgen_module

pytestmark = pytest.mark.timeout(120)


class TestRampProfile:
    def test_offsets_start_at_zero_and_gaps_shrink(self):
        offsets = RampProfile(100.0, 200.0).offsets(101)
        assert offsets[0] == 0.0
        gaps = np.diff(offsets)
        assert (gaps > 0).all()
        # Rate doubles across the run: first gap at 100pps, last near 200pps.
        assert gaps[0] == pytest.approx(1 / 100.0)
        assert gaps[-1] == pytest.approx(1 / 200.0, rel=0.02)
        assert (np.diff(gaps) < 0).all(), "ramp gaps must shrink monotonically"

    def test_flat_ramp_is_constant_rate(self):
        gaps = np.diff(RampProfile(500.0, 500.0).offsets(50))
        assert gaps == pytest.approx(np.full(49, 1 / 500.0))

    def test_degenerate_sizes(self):
        assert RampProfile(10.0, 20.0).offsets(0).shape == (0,)
        assert RampProfile(10.0, 20.0).offsets(1) == pytest.approx([0.0])

    @pytest.mark.parametrize("start,end", [(0.0, 10.0), (10.0, 0.0), (-1.0, 5.0)])
    def test_rejects_nonpositive_rates(self, start, end):
        with pytest.raises(ValueError, match="positive"):
            RampProfile(start, end)


class TestBurstProfile:
    def test_square_wave_alternates_between_both_rates(self):
        profile = BurstProfile(100.0, 1000.0, period_s=0.5, duty=0.2)
        offsets = profile.offsets(200)
        gaps = np.diff(offsets)
        burst_gaps = np.isclose(gaps, 1 / 1000.0)
        base_gaps = np.isclose(gaps, 1 / 100.0)
        # Every gap is one of the two rates, and both phases appear: the
        # schedule crosses burst→base and base→burst boundaries.
        assert (burst_gaps | base_gaps).all()
        assert burst_gaps.any() and base_gaps.any()
        # The first burst lasts duty*period = 0.1s at 1000pps = 100 packets.
        assert burst_gaps[:99].all()
        assert base_gaps[100:139].all()
        # After the base phase fills the period, the next burst opens.
        assert burst_gaps[140:199].any()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_pps": 0.0, "burst_pps": 10.0},
            {"base_pps": 10.0, "burst_pps": -1.0},
            {"base_pps": 10.0, "burst_pps": 20.0, "period_s": 0.0},
            {"base_pps": 10.0, "burst_pps": 20.0, "duty": 0.0},
            {"base_pps": 10.0, "burst_pps": 20.0, "duty": 1.0},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            BurstProfile(**kwargs)


class TestProfileValidation:
    def test_rate_and_profile_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            asyncio.run(
                open_loop_load(
                    "127.0.0.1",
                    1,
                    [(1, 1)],
                    rate_pps=100,
                    profile=RampProfile(10.0, 20.0),
                )
            )


class _FakeClient:
    """Stands in for AsyncClient: deterministic latency per packet value.

    Packets with first field < 32 take ``SLOW_S``; 32..39 take ``FAST_S``;
    >= 40 are shed with an ``overloaded`` error.  Batches act on their first
    row, so runs whose batch boundaries align with those bands behave
    identically packet-for-packet in batch=1 and batch>1 modes.
    """

    SLOW_S = 0.05
    FAST_S = 0.001
    wire_v2 = True

    @classmethod
    async def connect(cls, host, port, negotiate=True):
        client = cls()
        client.wire_v2 = bool(negotiate)
        return client

    async def _respond(self, lead_value: int, count: int) -> list[dict]:
        if lead_value >= 40:
            raise ServerError("shed", code="overloaded")
        await asyncio.sleep(self.SLOW_S if lead_value < 32 else self.FAST_S)
        return [
            {"matched": False, "rule_id": None, "priority": None}
            for _ in range(count)
        ]

    async def classify(self, packet):
        return (await self._respond(int(packet[0]), 1))[0]

    async def classify_batch(self, group):
        return await self._respond(int(group[0][0]), len(group))

    async def stats(self):
        return {}

    async def close(self):
        pass

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.close()


class TestPerPacketLatencySamples:
    """Batched runs must record one latency sample per packet.

    32 slow packets arrive as one batch and 8 fast ones as another: the
    packet-weighted p50 is the slow latency.  Sampling once per *batch*
    (the old bug) would average the two batches and report ~half of it.
    """

    PACKETS = [(i, i) for i in range(40)]

    def _run(self, monkeypatch, batch):
        monkeypatch.setattr(loadgen_module, "AsyncClient", _FakeClient)
        return asyncio.run(
            open_loop_load(
                "127.0.0.1",
                1,
                self.PACKETS,
                connections=1,
                window=64,
                batch=batch,
            )
        )

    def test_batched_percentiles_match_per_packet_ground_truth(self, monkeypatch):
        batched = self._run(monkeypatch, batch=32)
        assert batched.completed == 40
        assert batched.latency_p50_us > 40_000, (
            "p50 must be the slow-batch latency: 32 of 40 packets are slow, "
            "so per-batch sampling (2 samples) is the only way to land lower"
        )

    def test_batch_modes_agree_on_percentiles_and_shed_counts(self, monkeypatch):
        single = self._run(monkeypatch, batch=1)
        batched = self._run(monkeypatch, batch=32)
        assert single.completed == batched.completed == 40
        assert single.latency_p50_us > 40_000
        assert batched.latency_p50_us == pytest.approx(
            single.latency_p50_us, rel=0.3
        )

    def test_sheds_are_counted_not_sampled(self, monkeypatch):
        monkeypatch.setattr(loadgen_module, "AsyncClient", _FakeClient)
        packets = [(i, i) for i in range(32, 48)]  # 8 fast, 8 shed
        reports = [
            asyncio.run(
                open_loop_load(
                    "127.0.0.1",
                    1,
                    packets,
                    connections=1,
                    window=32,
                    batch=batch,
                )
            )
            for batch in (1, 8)
        ]
        for report in reports:
            assert report.completed == 8
            assert report.overloaded == 8
            assert report.errors == 0
            # Sheds return instantly; admitted-only percentiles stay at the
            # fast service time instead of being dragged down toward zero.
            assert report.latency_p50_us > 500

    def test_oversized_last_batch_still_counts_every_packet(self, monkeypatch):
        monkeypatch.setattr(loadgen_module, "AsyncClient", _FakeClient)
        packets = [(i, i) for i in range(32, 39)]  # 7 fast packets, batch=4
        report = asyncio.run(
            open_loop_load(
                "127.0.0.1",
                1,
                packets,
                connections=1,
                window=8,
                batch=4,
            )
        )
        assert report.completed == 7


class TestProfileIntegration:
    def test_ramp_profile_drives_a_real_server(self):
        async def scenario():
            rules = generate_classbench("acl1", 60, seed=19)
            engine = ClassificationEngine.build(rules, classifier="tm")
            async with AsyncServer(engine, max_batch=32, max_delay_us=200) as server:
                await server.start("127.0.0.1", 0)
                packets = [tuple(p) for p in rules.sample_packets(120, seed=23)]
                report = await open_loop_load(
                    server.host,
                    server.port,
                    packets,
                    connections=2,
                    window=16,
                    profile=RampProfile(2000.0, 6000.0),
                )
            engine.close()
            assert report.completed == 120
            assert report.errors == 0
            assert report.profile == "ramp"
            # Mean offered rate sits between the ramp's endpoints.
            assert 2000.0 < report.offered_rate_pps < 6000.0
            assert report.as_dict()["profile"] == "ramp"

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_no_profile_reports_none(self):
        async def scenario():
            rules = generate_classbench("acl1", 40, seed=29)
            engine = ClassificationEngine.build(rules, classifier="tm")
            async with AsyncServer(engine) as server:
                await server.start("127.0.0.1", 0)
                packets = [tuple(p) for p in rules.sample_packets(20, seed=31)]
                report = await open_loop_load(
                    server.host, server.port, packets, connections=1
                )
            engine.close()
            assert report.profile is None and report.offered_rate_pps is None

        asyncio.run(asyncio.wait_for(scenario(), timeout=60))
