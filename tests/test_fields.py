"""Unit tests for field schemas and prefix/range conversions."""

import pytest

from repro.rules.fields import (
    FIVE_TUPLE,
    FORWARDING,
    FieldSchema,
    FieldSpec,
    int_to_ip,
    ip_to_int,
    merge_ranges,
    prefix_length_of_range,
    prefix_to_range,
    range_is_prefix,
    range_to_prefixes,
)


class TestFieldSpec:
    def test_max_value(self):
        assert FieldSpec("x", 8).max_value == 255
        assert FieldSpec("x", 16).max_value == 65535
        assert FieldSpec("x", 32).max_value == 0xFFFFFFFF

    def test_domain_size(self):
        assert FieldSpec("x", 8).domain_size == 256

    def test_full_range(self):
        assert FieldSpec("x", 16).full_range() == (0, 65535)


class TestFieldSchema:
    def test_five_tuple_shape(self):
        assert len(FIVE_TUPLE) == 5
        assert FIVE_TUPLE.names == ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")

    def test_forwarding_single_field(self):
        assert len(FORWARDING) == 1
        assert FORWARDING[0].bits == 32

    def test_lookup_by_name_and_index(self):
        assert FIVE_TUPLE["dst_ip"].bits == 32
        assert FIVE_TUPLE[4].name == "protocol"
        assert FIVE_TUPLE.index_of("src_port") == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FieldSchema([FieldSpec("a", 8), FieldSpec("a", 16)])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            FieldSchema([])

    def test_validate_ranges_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            FIVE_TUPLE.validate_ranges([(0, 1)])
        with pytest.raises(ValueError):
            FORWARDING.validate_ranges([(5, 4)])
        with pytest.raises(ValueError):
            FORWARDING.validate_ranges([(0, 1 << 33)])

    def test_validate_values(self):
        FORWARDING.validate_values([123])
        with pytest.raises(ValueError):
            FORWARDING.validate_values([1 << 40])

    def test_equality_and_hash(self):
        other = FieldSchema(list(FIVE_TUPLE.specs))
        assert other == FIVE_TUPLE
        assert hash(other) == hash(FIVE_TUPLE)


class TestIPConversion:
    def test_roundtrip(self):
        for text in ["0.0.0.0", "10.0.1.255", "255.255.255.255", "192.168.1.1"]:
            assert int_to_ip(ip_to_int(text)) == text

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.300")
        with pytest.raises(ValueError):
            int_to_ip(1 << 40)


class TestPrefixConversion:
    def test_prefix_to_range_full(self):
        assert prefix_to_range(0, 0) == (0, 0xFFFFFFFF)

    def test_prefix_to_range_host(self):
        assert prefix_to_range(12345, 32) == (12345, 12345)

    def test_prefix_to_range_masks_host_bits(self):
        lo, hi = prefix_to_range(ip_to_int("10.1.2.3"), 24)
        assert lo == ip_to_int("10.1.2.0")
        assert hi == ip_to_int("10.1.2.255")

    def test_prefix_to_range_invalid_length(self):
        with pytest.raises(ValueError):
            prefix_to_range(0, 33)

    def test_range_is_prefix(self):
        assert range_is_prefix(0, 255)
        assert range_is_prefix(256, 511)
        assert not range_is_prefix(1, 256)
        assert not range_is_prefix(0, 254)

    def test_prefix_length_of_range(self):
        assert prefix_length_of_range(0, 0xFFFFFFFF) == 0
        assert prefix_length_of_range(0, 255) == 24
        assert prefix_length_of_range(7, 7) == 32
        assert prefix_length_of_range(1, 256) is None

    def test_range_to_prefixes_covers_range(self):
        for lo, hi in [(0, 10), (1, 14), (5, 255), (1000, 70000), (0, 0)]:
            prefixes = range_to_prefixes(lo, hi, bits=32)
            covered = []
            for value, length in prefixes:
                plo, phi = prefix_to_range(value, length, 32)
                covered.append((plo, phi))
            covered.sort()
            # Contiguous, non-overlapping and covering exactly [lo, hi].
            assert covered[0][0] == lo
            assert covered[-1][1] == hi
            for (a_lo, a_hi), (b_lo, b_hi) in zip(covered[:-1], covered[1:]):
                assert b_lo == a_hi + 1

    def test_range_to_prefixes_empty_range(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 4)


class TestMergeRanges:
    def test_merges_overlapping(self):
        assert merge_ranges([(0, 5), (3, 10), (12, 15)]) == [(0, 10), (12, 15)]

    def test_merges_adjacent(self):
        assert merge_ranges([(0, 5), (6, 10)]) == [(0, 10)]

    def test_keeps_disjoint(self):
        assert merge_ranges([(10, 20), (0, 5)]) == [(0, 5), (10, 20)]

    def test_empty(self):
        assert merge_ranges([]) == []
