"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.rules import generate_classbench, parse_classbench_file, write_classbench_file


@pytest.fixture()
def ruleset_file(tmp_path):
    path = tmp_path / "rules.txt"
    write_classbench_file(generate_classbench("acl1", 300, seed=1), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.txt"])
        assert args.application == "acl1"
        assert args.rules == 10_000

    def test_rejects_unknown_classifier(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "x.txt", "--classifier", "bogus"])


class TestGenerate:
    def test_generates_classbench_file(self, tmp_path, capsys):
        out = tmp_path / "acl.txt"
        code = main(["generate", str(out), "--application", "acl2", "--rules", "150"])
        assert code == 0
        parsed = parse_classbench_file(out)
        assert len(parsed) == 150

    def test_generates_stanford_file(self, tmp_path):
        out = tmp_path / "fwd.txt"
        code = main(["generate", str(out), "--application", "stanford", "--rules", "200"])
        assert code == 0
        parsed = parse_classbench_file(out)
        assert len(parsed) == 200
        # Forwarding rules are widened to the 5-tuple with wildcards everywhere
        # except the destination address.
        assert all(rule.ranges[0] == (0, 0xFFFFFFFF) for rule in parsed)


class TestInspect:
    def test_prints_coverage_table(self, ruleset_file, capsys):
        assert main(["inspect", str(ruleset_file), "--isets", "3"]) == 0
        out = capsys.readouterr().out
        assert "coverage %" in out
        assert "rules" in out


class TestBuild:
    def test_build_baseline(self, ruleset_file, capsys):
        assert main(["build", str(ruleset_file), "--classifier", "tm"]) == 0
        out = capsys.readouterr().out
        assert "tm over" in out
        assert "index_bytes" in out

    def test_build_nuevomatch(self, ruleset_file, capsys):
        assert main(["build", str(ruleset_file), "--classifier", "nm",
                     "--remainder", "tm", "--error-threshold", "128"]) == 0
        out = capsys.readouterr().out
        assert "num_isets" in out
        assert "coverage" in out


class TestCompare:
    def test_compare_reports_speedup(self, ruleset_file, capsys):
        assert main(["compare", str(ruleset_file), "--baseline", "tm",
                     "--packets", "50"]) == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "nm(tm)" in out


class TestTrain:
    def test_train_builds_and_persists_with_provenance(
        self, ruleset_file, tmp_path, capsys
    ):
        from repro.engine import ClassificationEngine

        out = tmp_path / "engine.json.gz"
        assert main(["train", str(ruleset_file), str(out), "--jobs", "2"]) == 0
        printed = capsys.readouterr().out
        assert "training mode" in printed
        engine = ClassificationEngine.load(out)
        assert engine.metadata["training"]["mode"] == "pipeline"
        assert engine.metadata["training"]["jobs"] == 2

    def test_train_warm_start_from_snapshot(self, ruleset_file, tmp_path, capsys):
        cold = tmp_path / "cold.json.gz"
        warm = tmp_path / "warm.json.gz"
        assert main(["train", str(ruleset_file), str(cold)]) == 0
        assert main(["train", str(ruleset_file), str(warm),
                     "--warm-start", str(cold)]) == 0
        printed = capsys.readouterr().out
        import re

        assert re.search(r"training warm_started\s*: True", printed)

    def test_train_rejects_warm_start_for_stateless_classifier(
        self, ruleset_file, tmp_path, capsys
    ):
        out = tmp_path / "tm.json.gz"
        code = main(["train", str(ruleset_file), str(out),
                     "--classifier", "tm", "--jobs", "4"])
        assert code == 2
        assert "no trained state" in capsys.readouterr().err

    def test_train_rejects_non_nm_warm_source(self, ruleset_file, tmp_path, capsys):
        baseline = tmp_path / "tm.json.gz"
        assert main(["train", str(ruleset_file), str(baseline),
                     "--classifier", "tm"]) == 0
        out = tmp_path / "warm.json.gz"
        code = main(["train", str(ruleset_file), str(out),
                     "--warm-start", str(baseline)])
        assert code == 2
        assert "warm starting" in capsys.readouterr().err


class TestServeListen:
    def test_parser_accepts_coalescing_options(self):
        args = build_parser().parse_args(
            ["serve", "rules.txt", "--listen", "0.0.0.0:8590",
             "--max-batch", "64", "--max-delay-us", "150",
             "--max-queue", "512", "--cache-size", "2048"]
        )
        assert args.listen == "0.0.0.0:8590"
        assert args.max_batch == 64
        assert args.max_delay_us == 150.0
        assert args.max_queue == 512
        assert args.cache_size == 2048

    def test_listen_defaults(self):
        from repro.serving import (
            DEFAULT_MAX_BATCH,
            DEFAULT_MAX_DELAY_US,
            DEFAULT_MAX_QUEUE,
        )

        args = build_parser().parse_args(["serve", "rules.txt"])
        assert args.listen is None
        assert args.max_batch == DEFAULT_MAX_BATCH
        assert args.max_delay_us == DEFAULT_MAX_DELAY_US
        assert args.max_queue == DEFAULT_MAX_QUEUE
        assert args.cache_size == 0

    def test_listen_address_parsing(self):
        from repro.cli import _listen_address

        assert _listen_address("127.0.0.1:8590") == ("127.0.0.1", 8590)
        assert _listen_address(":0") == ("127.0.0.1", 0)
        for bad in ("8590", "host:", "host:port"):
            with pytest.raises(SystemExit):
                _listen_address(bad)


class TestServe:
    def test_serve_builds_and_reports_throughput(self, ruleset_file, capsys):
        assert main(["serve", str(ruleset_file), "--shards", "2",
                     "--classifier", "tm", "--executor", "serial",
                     "--packets", "100", "--batch-size", "32"]) == 0
        out = capsys.readouterr().out
        assert "sharded[2]" in out
        assert "modelled throughput Mpps" in out

    def test_serve_saves_and_reloads_snapshot(self, ruleset_file, tmp_path, capsys):
        snapshot = tmp_path / "sharded.json.gz"
        assert main(["serve", str(ruleset_file), "--shards", "3",
                     "--classifier", "tm", "--executor", "serial",
                     "--packets", "50", "--save", str(snapshot)]) == 0
        assert snapshot.exists()
        capsys.readouterr()
        assert main(["serve", str(snapshot), "--executor", "serial",
                     "--packets", "50"]) == 0
        out = capsys.readouterr().out
        assert "sharded[3]" in out

    def test_serve_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "x.txt", "--executor", "gpu"])


class TestReplay:
    def test_replay_cached_sharded_reports_hit_rate(self, ruleset_file, capsys):
        assert main(["replay", "--ruleset", str(ruleset_file), "--trace", "zipf",
                     "--skew", "95", "--cache-size", "512", "--shards", "2",
                     "--executor", "serial", "--packets", "2000",
                     "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "cache hit rate" in out
        assert "latency p99 ns/pkt" in out
        assert "cached(sharded[2])" in out

    def test_replay_generates_synthetic_ruleset_by_default(self, capsys):
        assert main(["replay", "--trace", "uniform", "--rules", "200",
                     "--packets", "400", "--batch-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "engine[tm]" in out
        assert "measured kpps" in out

    def test_replay_json_output(self, ruleset_file, capsys):
        import json

        assert main(["replay", "--ruleset", str(ruleset_file), "--trace", "caida",
                     "--cache-size", "256", "--packets", "1000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_size"] == 256
        assert payload["packets"] == 1000
        assert 0.0 <= payload["hit_rate"] <= 1.0
        assert payload["cache"]["capacity"] == 256

    def test_replay_rejects_unknown_trace_and_skew(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--trace", "bursty"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--skew", "42"])
