"""Differential conformance suite.

Every registered classifier — the sharded serving layer at several shard
counts, and the flow-cached engine stacks (plain and sharded) both cold and
warm — must agree with :class:`LinearSearchClassifier` ground truth on the
same packet sets.  Generated rule-sets assign unique priorities (ClassBench
convention: position order), so agreement is checked on exact rule identity,
not just priority.
"""

import random

import numpy as np
import pytest

from repro.classifiers import available_classifiers, build_classifier
from repro.classifiers.base import ClassificationResult, LookupTrace
from repro.classifiers.linear import LinearSearchClassifier
from repro.core.nuevomatch import NuevoMatch
from repro.engine import ClassificationEngine
from repro.rules.rule import Rule
from repro.serving import CachedEngine, ShardedEngine, wire

from _helpers import fast_nm_config

SHARD_COUNTS = (1, 2, 4)

#: Cache capacities for the CachedEngine rows: smaller than the probe set (so
#: eviction fires mid-run) and comfortably larger than it.
CACHE_CAPACITIES = (64, 1024)


def _packets_for(ruleset, matching=100, uniform=50, seed=33):
    """Rule-matching samples plus uniform-random packets (likely misses)."""
    packets = list(ruleset.sample_packets(matching, seed=seed))
    rng = random.Random(seed + 1)
    packets.extend(
        tuple(rng.randint(0, spec.max_value) for spec in ruleset.schema)
        for _ in range(uniform)
    )
    return packets


def _keys(results):
    return [
        None if result.rule is None else (result.rule.priority, result.rule.rule_id)
        for result in results
    ]


def _block(packets):
    return np.array([tuple(packet) for packet in packets], dtype=np.uint64)


def _block_keys(rule_ids, priorities):
    """Columnar outputs in the same key shape as :func:`_keys`."""
    return [
        None if rule_id < 0 else (int(priority), int(rule_id))
        for rule_id, priority in zip(rule_ids, priorities)
    ]


def _wide_rule(ruleset, priority, rule_id):
    """A full-range rule: matches every probe, so overlay order is stressed."""
    ranges = tuple((0, spec.max_value) for spec in ruleset.schema)
    return Rule(ranges, priority=priority, rule_id=rule_id)


def _build(name, ruleset):
    if name == "nm":
        return NuevoMatch.build(
            ruleset, remainder_classifier="tm", config=fast_nm_config()
        )
    return build_classifier(name, ruleset)


@pytest.fixture(scope="module", params=["acl_small", "fw_small"])
def conformance_ruleset(request):
    return request.getfixturevalue(request.param)


class TestRegisteredClassifiers:
    @pytest.mark.parametrize("name", available_classifiers())
    def test_agrees_with_linear_ground_truth(self, name, conformance_ruleset):
        ruleset = conformance_ruleset
        oracle = LinearSearchClassifier.build(ruleset)
        classifier = _build(name, ruleset)
        packets = _packets_for(ruleset)
        assert _keys(classifier.classify_batch(packets)) == _keys(
            oracle.classify_batch(packets)
        )


class TestShardedEngine:
    @pytest.fixture(scope="class")
    def unsharded_tm(self, acl_small):
        return ClassificationEngine.build(acl_small, classifier="tm")

    @pytest.fixture(scope="class")
    def unsharded_nm(self, acl_small):
        return ClassificationEngine.build(
            acl_small,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tm_shards_identical_to_unsharded(self, shards, acl_small, unsharded_tm):
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                unsharded_tm.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_nm_shards_identical_to_unsharded(self, shards, acl_small, unsharded_nm):
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small,
            shards=shards,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                unsharded_nm.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_agrees_with_linear_ground_truth(self, shards, acl_small):
        oracle = LinearSearchClassifier.build(acl_small)
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm", executor="serial"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                oracle.classify_batch(packets)
            )


class TestCachedEngine:
    """Flow-cached stacks in the differential matrix.

    Each probe set runs twice through one CachedEngine: the first pass is all
    misses (slow path + fills), the second mostly hits — both must agree with
    linear ground truth, and with each other, at capacities below and above
    the distinct-flow count.
    """

    @pytest.mark.parametrize("capacity", CACHE_CAPACITIES)
    def test_cached_plain_engine_matches_ground_truth(self, capacity, conformance_ruleset):
        ruleset = conformance_ruleset
        oracle = LinearSearchClassifier.build(ruleset)
        packets = _packets_for(ruleset)
        expected = _keys(oracle.classify_batch(packets))
        with CachedEngine(
            ClassificationEngine.build(ruleset, classifier="tm"),
            capacity=capacity,
        ) as cached:
            cold = _keys(cached.classify_batch(packets))
            warm = _keys(cached.classify_batch(packets))
        assert cold == expected
        assert warm == expected

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("capacity", CACHE_CAPACITIES)
    def test_cached_sharded_engine_matches_ground_truth(
        self, capacity, shards, acl_small
    ):
        oracle = LinearSearchClassifier.build(acl_small)
        packets = _packets_for(acl_small)
        expected = _keys(oracle.classify_batch(packets))
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm", executor="serial"
        ) as sharded:
            with CachedEngine(sharded, capacity=capacity) as cached:
                cold = _keys(cached.classify_batch(packets))
                warm = _keys(cached.classify_batch(packets))
                assert cached.cache.stats.hits > 0
        assert cold == expected
        assert warm == expected

    def test_cached_engine_identical_to_uncached_per_packet(self, acl_small):
        """Row-for-row: cached and uncached stacks return the same rule for
        every probe, cold and warm (bit-identical matches, as documented)."""
        packets = _packets_for(acl_small)
        uncached = ClassificationEngine.build(acl_small, classifier="tm")
        baseline = _keys(uncached.classify_batch(packets))
        with CachedEngine(
            ClassificationEngine.build(acl_small, classifier="tm"), capacity=256
        ) as cached:
            assert _keys(cached.classify_batch(packets)) == baseline
            assert _keys(cached.classify_batch(packets)) == baseline


class TestColumnarConformance:
    """``classify_block`` is the primitive; ``classify_batch`` is a view.

    For every serving stack the columnar outputs must be row-identical to the
    object path *on the same instance*, both with a clean ruleset and with a
    pending update overlay (interleaved inserts and removes that have not been
    merged into the built structures yet).
    """

    def test_plain_engine_block_matches_batch(self, conformance_ruleset):
        engine = ClassificationEngine.build(conformance_ruleset, classifier="tm")
        packets = _packets_for(conformance_ruleset)
        rule_ids, priorities = engine.classify_block(_block(packets))
        assert _block_keys(rule_ids, priorities) == _keys(
            engine.classify_batch(packets)
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sharded_block_matches_batch(self, shards, executor, acl_small):
        packets = _packets_for(acl_small)
        block = _block(packets)
        with ShardedEngine.build(
            acl_small,
            shards=shards,
            classifier="tm",
            executor=executor,
            retrain_threshold=1.0,
        ) as sharded:
            rule_ids, priorities = sharded.classify_block(block)
            assert _block_keys(rule_ids, priorities) == _keys(
                sharded.classify_batch(packets)
            )
            # Build a pending overlay: a full-range insert that beats every
            # base rule, plus removals of current winners.
            sharded.insert(_wide_rule(acl_small, priority=-10, rule_id=900_001))
            for rule in list(acl_small)[:3]:
                sharded.remove(rule.rule_id)
            rule_ids, priorities = sharded.classify_block(block)
            assert _block_keys(rule_ids, priorities) == _keys(
                sharded.classify_batch(packets)
            )
            # Removing the overlay winner exercises the removed-winner rescan.
            sharded.remove(900_001)
            rule_ids, priorities = sharded.classify_block(block)
            assert _block_keys(rule_ids, priorities) == _keys(
                sharded.classify_batch(packets)
            )

    def test_sharded_workers_block_matches_batch(self, acl_small):
        packets = _packets_for(acl_small)
        block = _block(packets)
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="tm",
            executor="workers",
            retrain_threshold=1.0,
        ) as sharded:
            rule_ids, priorities = sharded.classify_block(block)
            assert _block_keys(rule_ids, priorities) == _keys(
                sharded.classify_batch(packets)
            )
            sharded.insert(_wide_rule(acl_small, priority=-10, rule_id=900_002))
            for rule in list(acl_small)[:2]:
                sharded.remove(rule.rule_id)
            rule_ids, priorities = sharded.classify_block(block)
            assert _block_keys(rule_ids, priorities) == _keys(
                sharded.classify_batch(packets)
            )

    def test_sharded_block_traces_match_object_traces(self, acl_small):
        """Per-packet trace counters agree between the two paths, including
        over a pending overlay (probe counts are part of the contract)."""
        packets = _packets_for(acl_small)
        block = _block(packets)
        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="tm",
            executor="serial",
            retrain_threshold=1.0,
        ) as sharded:
            sharded.insert(_wide_rule(acl_small, priority=-10, rule_id=900_003))
            sharded.remove(list(acl_small)[0].rule_id)
            traces = np.zeros((len(block), 5), dtype=np.int64)
            sharded.classify_block(block, traces=traces)
            results = sharded.classify_batch(packets)
            expected = np.array(
                [
                    [
                        result.trace.index_accesses,
                        result.trace.rule_accesses,
                        result.trace.model_accesses,
                        result.trace.compute_ops,
                        result.trace.hash_ops,
                    ]
                    for result in results
                ],
                dtype=np.int64,
            )
            np.testing.assert_array_equal(traces, expected)

    @pytest.mark.parametrize("capacity", CACHE_CAPACITIES)
    @pytest.mark.parametrize("wrap", ["plain", "sharded"])
    def test_cached_block_matches_batch_with_interleaved_updates(
        self, capacity, wrap, acl_small
    ):
        packets = _packets_for(acl_small)
        block = _block(packets)
        if wrap == "sharded":
            base = ShardedEngine.build(
                acl_small,
                shards=2,
                classifier="tm",
                executor="serial",
                retrain_threshold=1.0,
            )
        else:
            base = ClassificationEngine.build(acl_small, classifier="tm")
        try:
            with CachedEngine(base, capacity=capacity) as cached:
                # Cold (block fills the cache), warm (block hits), and the
                # object path must all agree with the underlying engine.
                for _ in range(2):
                    expected = _keys(base.classify_batch(packets))
                    rule_ids, priorities = cached.classify_block(block)
                    assert _block_keys(rule_ids, priorities) == expected
                    assert _keys(cached.classify_batch(packets)) == expected
                # Interleaved updates invalidate; both paths must track them.
                cached.insert(_wide_rule(acl_small, priority=-5, rule_id=910_001))
                expected = _keys(base.classify_batch(packets))
                rule_ids, priorities = cached.classify_block(block)
                assert _block_keys(rule_ids, priorities) == expected
                assert _keys(cached.classify_batch(packets)) == expected
                cached.remove(910_001)
                cached.remove(list(acl_small)[0].rule_id)
                expected = _keys(base.classify_batch(packets))
                rule_ids, priorities = cached.classify_block(block)
                assert _block_keys(rule_ids, priorities) == expected
                assert _keys(cached.classify_batch(packets)) == expected
        finally:
            close = getattr(base, "close", None)
            if close is not None:
                close()

    def test_block_path_allocates_no_result_objects(self, acl_small, monkeypatch):
        """The no-caller-objects path really is allocation-free: no
        ClassificationResult and no LookupTrace is constructed anywhere in
        cached → sharded → classifier ``classify_block``, cold or warm."""
        packets = _packets_for(acl_small)
        block = _block(packets)
        counts = {"results": 0, "traces": 0}
        real_result_init = ClassificationResult.__init__
        real_trace_init = LookupTrace.__init__

        def counting_result_init(self, *args, **kwargs):
            counts["results"] += 1
            real_result_init(self, *args, **kwargs)

        def counting_trace_init(self, *args, **kwargs):
            counts["traces"] += 1
            real_trace_init(self, *args, **kwargs)

        with ShardedEngine.build(
            acl_small,
            shards=2,
            classifier="tm",
            executor="serial",
            retrain_threshold=1.0,
        ) as sharded:
            with CachedEngine(sharded, capacity=1024) as cached:
                monkeypatch.setattr(
                    ClassificationResult, "__init__", counting_result_init
                )
                monkeypatch.setattr(LookupTrace, "__init__", counting_trace_init)
                cached.classify_block(block)  # cold: misses + fills
                cached.classify_block(block)  # warm: cache hits
                sharded.classify_block(block)  # uncached slow path
                assert counts == {"results": 0, "traces": 0}
                # Sanity: the counters do fire on the object path.
                cached.classify_batch(packets[:4])
                assert counts["results"] > 0 and counts["traces"] > 0


class TestMissEncoding:
    """One miss contract on every path: ``rule_id == -1``, ``priority == 0``.

    Differential across plain/sharded/cached stacks (cold and warm), plus the
    wire codec, so no internal sentinel (the worker runtime's old
    ``MISS_PRIORITY``) can escape into results.
    """

    def test_miss_contract_uniform_across_paths(self, acl_small):
        packets = _packets_for(acl_small)
        oracle = LinearSearchClassifier.build(acl_small)
        miss_rows = [
            row
            for row, key in enumerate(_keys(oracle.classify_batch(packets)))
            if key is None
        ]
        assert miss_rows, "probe set must contain at least one miss"
        block = _block(packets)
        plain = ClassificationEngine.build(acl_small, classifier="tm")
        with ShardedEngine.build(
            acl_small, shards=2, classifier="tm", executor="serial"
        ) as sharded:
            with CachedEngine(
                ClassificationEngine.build(acl_small, classifier="tm"), capacity=256
            ) as cached:
                for stack in (plain, sharded, cached, cached):  # cached twice: warm
                    rule_ids, priorities = stack.classify_block(block)
                    assert (rule_ids[miss_rows] == -1).all()
                    assert (priorities[rule_ids < 0] == 0).all()
                # The wire codec preserves the encoding bit for bit.
                rule_ids, priorities = plain.classify_block(block)
                payload = wire.encode_classify_response(7, rule_ids, priorities)
                _id, status, wire_ids, wire_pris = wire.decode_classify_response(
                    payload
                )
                assert status == wire.STATUS_OK
                np.testing.assert_array_equal(wire_ids, rule_ids)
                np.testing.assert_array_equal(wire_pris, priorities)

    def test_worker_miss_sentinel_does_not_escape(self):
        import repro.serving.workers as workers

        assert not hasattr(workers, "MISS_PRIORITY")


class TestBlockValidation:
    """`validate_block` is the one shared gate: identical rejection messages
    (and identical acceptance) across plain, sharded, and cached stacks."""

    BAD_BLOCKS = (
        pytest.param(
            np.ones((4, 5), dtype=np.float64),
            "packet block must be an integer array",
            id="float-dtype",
        ),
        pytest.param(
            np.ones(5, dtype=np.uint64),
            "packet block must be 2-dimensional",
            id="one-dimensional",
        ),
        pytest.param(
            np.array([[1, -2, 3, 4, 5]], dtype=np.int64),
            "packet field values must be non-negative",
            id="negative-value",
        ),
    )

    @pytest.mark.parametrize("bad, message", BAD_BLOCKS)
    def test_identical_messages_across_stacks(self, bad, message, acl_small):
        plain = ClassificationEngine.build(acl_small, classifier="tm")
        with ShardedEngine.build(
            acl_small, shards=2, classifier="tm", executor="serial"
        ) as sharded:
            with CachedEngine(
                ClassificationEngine.build(acl_small, classifier="tm"), capacity=64
            ) as cached:
                for stack in (plain, sharded, cached):
                    with pytest.raises(ValueError) as excinfo:
                        stack.classify_block(bad)
                    assert str(excinfo.value) == message

    def test_signed_non_negative_blocks_are_accepted(self, acl_small):
        """int64 blocks with non-negative values pass through every stack
        (signedness alone is not a rejection)."""
        packets = _packets_for(acl_small, matching=10, uniform=0)
        signed = _block(packets).astype(np.int64)
        plain = ClassificationEngine.build(acl_small, classifier="tm")
        with ShardedEngine.build(
            acl_small, shards=2, classifier="tm", executor="serial"
        ) as sharded:
            with CachedEngine(
                ClassificationEngine.build(acl_small, classifier="tm"), capacity=64
            ) as cached:
                expected = _block_keys(*plain.classify_block(_block(packets)))
                for stack in (plain, sharded, cached):
                    assert _block_keys(*stack.classify_block(signed)) == expected
