"""Differential conformance suite.

Every registered classifier — and the sharded serving layer at several shard
counts — must agree with :class:`LinearSearchClassifier` ground truth on the
same packet sets.  Generated rule-sets assign unique priorities (ClassBench
convention: position order), so agreement is checked on exact rule identity,
not just priority.
"""

import random

import pytest

from repro.classifiers import available_classifiers, build_classifier
from repro.classifiers.linear import LinearSearchClassifier
from repro.core.nuevomatch import NuevoMatch
from repro.engine import ClassificationEngine
from repro.serving import ShardedEngine

from _helpers import fast_nm_config

SHARD_COUNTS = (1, 2, 4)


def _packets_for(ruleset, matching=100, uniform=50, seed=33):
    """Rule-matching samples plus uniform-random packets (likely misses)."""
    packets = list(ruleset.sample_packets(matching, seed=seed))
    rng = random.Random(seed + 1)
    packets.extend(
        tuple(rng.randint(0, spec.max_value) for spec in ruleset.schema)
        for _ in range(uniform)
    )
    return packets


def _keys(results):
    return [
        None if result.rule is None else (result.rule.priority, result.rule.rule_id)
        for result in results
    ]


def _build(name, ruleset):
    if name == "nm":
        return NuevoMatch.build(
            ruleset, remainder_classifier="tm", config=fast_nm_config()
        )
    return build_classifier(name, ruleset)


@pytest.fixture(scope="module", params=["acl_small", "fw_small"])
def conformance_ruleset(request):
    return request.getfixturevalue(request.param)


class TestRegisteredClassifiers:
    @pytest.mark.parametrize("name", available_classifiers())
    def test_agrees_with_linear_ground_truth(self, name, conformance_ruleset):
        ruleset = conformance_ruleset
        oracle = LinearSearchClassifier.build(ruleset)
        classifier = _build(name, ruleset)
        packets = _packets_for(ruleset)
        assert _keys(classifier.classify_batch(packets)) == _keys(
            oracle.classify_batch(packets)
        )


class TestShardedEngine:
    @pytest.fixture(scope="class")
    def unsharded_tm(self, acl_small):
        return ClassificationEngine.build(acl_small, classifier="tm")

    @pytest.fixture(scope="class")
    def unsharded_nm(self, acl_small):
        return ClassificationEngine.build(
            acl_small,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tm_shards_identical_to_unsharded(self, shards, acl_small, unsharded_tm):
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                unsharded_tm.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_nm_shards_identical_to_unsharded(self, shards, acl_small, unsharded_nm):
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small,
            shards=shards,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                unsharded_nm.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_agrees_with_linear_ground_truth(self, shards, acl_small):
        oracle = LinearSearchClassifier.build(acl_small)
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm", executor="serial"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                oracle.classify_batch(packets)
            )
