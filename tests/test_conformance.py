"""Differential conformance suite.

Every registered classifier — the sharded serving layer at several shard
counts, and the flow-cached engine stacks (plain and sharded) both cold and
warm — must agree with :class:`LinearSearchClassifier` ground truth on the
same packet sets.  Generated rule-sets assign unique priorities (ClassBench
convention: position order), so agreement is checked on exact rule identity,
not just priority.
"""

import random

import pytest

from repro.classifiers import available_classifiers, build_classifier
from repro.classifiers.linear import LinearSearchClassifier
from repro.core.nuevomatch import NuevoMatch
from repro.engine import ClassificationEngine
from repro.serving import CachedEngine, ShardedEngine

from _helpers import fast_nm_config

SHARD_COUNTS = (1, 2, 4)

#: Cache capacities for the CachedEngine rows: smaller than the probe set (so
#: eviction fires mid-run) and comfortably larger than it.
CACHE_CAPACITIES = (64, 1024)


def _packets_for(ruleset, matching=100, uniform=50, seed=33):
    """Rule-matching samples plus uniform-random packets (likely misses)."""
    packets = list(ruleset.sample_packets(matching, seed=seed))
    rng = random.Random(seed + 1)
    packets.extend(
        tuple(rng.randint(0, spec.max_value) for spec in ruleset.schema)
        for _ in range(uniform)
    )
    return packets


def _keys(results):
    return [
        None if result.rule is None else (result.rule.priority, result.rule.rule_id)
        for result in results
    ]


def _build(name, ruleset):
    if name == "nm":
        return NuevoMatch.build(
            ruleset, remainder_classifier="tm", config=fast_nm_config()
        )
    return build_classifier(name, ruleset)


@pytest.fixture(scope="module", params=["acl_small", "fw_small"])
def conformance_ruleset(request):
    return request.getfixturevalue(request.param)


class TestRegisteredClassifiers:
    @pytest.mark.parametrize("name", available_classifiers())
    def test_agrees_with_linear_ground_truth(self, name, conformance_ruleset):
        ruleset = conformance_ruleset
        oracle = LinearSearchClassifier.build(ruleset)
        classifier = _build(name, ruleset)
        packets = _packets_for(ruleset)
        assert _keys(classifier.classify_batch(packets)) == _keys(
            oracle.classify_batch(packets)
        )


class TestShardedEngine:
    @pytest.fixture(scope="class")
    def unsharded_tm(self, acl_small):
        return ClassificationEngine.build(acl_small, classifier="tm")

    @pytest.fixture(scope="class")
    def unsharded_nm(self, acl_small):
        return ClassificationEngine.build(
            acl_small,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tm_shards_identical_to_unsharded(self, shards, acl_small, unsharded_tm):
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                unsharded_tm.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_nm_shards_identical_to_unsharded(self, shards, acl_small, unsharded_nm):
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small,
            shards=shards,
            classifier="nm",
            remainder_classifier="tm",
            config=fast_nm_config(),
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                unsharded_nm.classify_batch(packets)
            )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_agrees_with_linear_ground_truth(self, shards, acl_small):
        oracle = LinearSearchClassifier.build(acl_small)
        packets = _packets_for(acl_small)
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm", executor="serial"
        ) as sharded:
            assert _keys(sharded.classify_batch(packets)) == _keys(
                oracle.classify_batch(packets)
            )


class TestCachedEngine:
    """Flow-cached stacks in the differential matrix.

    Each probe set runs twice through one CachedEngine: the first pass is all
    misses (slow path + fills), the second mostly hits — both must agree with
    linear ground truth, and with each other, at capacities below and above
    the distinct-flow count.
    """

    @pytest.mark.parametrize("capacity", CACHE_CAPACITIES)
    def test_cached_plain_engine_matches_ground_truth(self, capacity, conformance_ruleset):
        ruleset = conformance_ruleset
        oracle = LinearSearchClassifier.build(ruleset)
        packets = _packets_for(ruleset)
        expected = _keys(oracle.classify_batch(packets))
        with CachedEngine(
            ClassificationEngine.build(ruleset, classifier="tm"),
            capacity=capacity,
        ) as cached:
            cold = _keys(cached.classify_batch(packets))
            warm = _keys(cached.classify_batch(packets))
        assert cold == expected
        assert warm == expected

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("capacity", CACHE_CAPACITIES)
    def test_cached_sharded_engine_matches_ground_truth(
        self, capacity, shards, acl_small
    ):
        oracle = LinearSearchClassifier.build(acl_small)
        packets = _packets_for(acl_small)
        expected = _keys(oracle.classify_batch(packets))
        with ShardedEngine.build(
            acl_small, shards=shards, classifier="tm", executor="serial"
        ) as sharded:
            with CachedEngine(sharded, capacity=capacity) as cached:
                cold = _keys(cached.classify_batch(packets))
                warm = _keys(cached.classify_batch(packets))
                assert cached.cache.stats.hits > 0
        assert cold == expected
        assert warm == expected

    def test_cached_engine_identical_to_uncached_per_packet(self, acl_small):
        """Row-for-row: cached and uncached stacks return the same rule for
        every probe, cold and warm (bit-identical matches, as documented)."""
        packets = _packets_for(acl_small)
        uncached = ClassificationEngine.build(acl_small, classifier="tm")
        baseline = _keys(uncached.classify_batch(packets))
        with CachedEngine(
            ClassificationEngine.build(acl_small, classifier="tm"), capacity=256
        ) as cached:
            assert _keys(cached.classify_batch(packets)) == baseline
            assert _keys(cached.classify_batch(packets)) == baseline
