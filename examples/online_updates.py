#!/usr/bin/env python3
"""Scenario: online rule updates with periodic retraining (the paper's §3.9).

Network policies change continuously: rules are added, deleted and modified
while traffic keeps flowing.  NuevoMatch routes updated rules to the remainder
classifier (TupleMerge, which supports fast updates) and retrains the RQ-RMIs
periodically.  This example:

1. applies a stream of updates to a live classifier and verifies correctness
   against the evolving oracle rule-set;
2. shows the remainder fraction growing until the retraining threshold fires;
3. plots (textually) the analytical throughput-over-time curve of Figure 7 and
   the sustained-update-rate estimate.

Run with::

    python examples/online_updates.py [--rules 5000] [--updates 800]
"""

import argparse
import random

from repro import NuevoMatch, NuevoMatchConfig, generate_classbench
from repro.analysis import format_series
from repro.classifiers import TupleMergeClassifier
from repro.core.config import RQRMIConfig
from repro.core.updates import (
    UpdatableNuevoMatch,
    sustained_update_rate,
    throughput_over_time,
)
from repro.rules.rule import Rule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rules", type=int, default=5_000)
    parser.add_argument("--updates", type=int, default=800)
    args = parser.parse_args()

    print(f"Building NuevoMatch over {args.rules} rules (TupleMerge remainder)...")
    rules = generate_classbench("ipc1", args.rules, seed=3)
    nm = NuevoMatch.build(
        rules,
        remainder_classifier=TupleMergeClassifier,
        config=NuevoMatchConfig(
            max_isets=4, min_iset_coverage=0.05, rqrmi=RQRMIConfig(error_threshold=64)
        ),
    )
    updatable = UpdatableNuevoMatch(nm, retrain_threshold=0.25)
    rng = random.Random(9)

    print(f"Applying {args.updates} updates "
          "(50% additions, 30% deletions, 20% action changes)...")
    next_id = args.rules
    live_ids = {rule.rule_id for rule in rules}
    retrains = 0
    for step in range(args.updates):
        kind = rng.random()
        if kind < 0.5:
            value = rng.randrange(0, 1 << 32)
            rule = Rule(
                ((value, value), (value ^ 0xFFFF, value ^ 0xFFFF),
                 (0, 65535), (rng.randrange(1, 65536),) * 2, (6, 6)),
                priority=-step, rule_id=next_id,
            )
            updatable.add(rule)
            live_ids.add(next_id)
            next_id += 1
        elif kind < 0.8 and live_ids:
            victim = rng.choice(sorted(live_ids))
            if updatable.delete(victim):
                live_ids.discard(victim)
        else:
            victim = rng.choice(sorted(live_ids))
            updatable.change_action(victim, f"updated-{step}")

        if updatable.needs_retraining():
            print(f"  step {step}: remainder fraction "
                  f"{updatable.remainder_fraction:.1%} -> retraining")
            updatable.retrain()
            retrains += 1

    print(f"Done: {retrains} retrainings, final remainder fraction "
          f"{updatable.remainder_fraction:.1%}")

    print("\nVerifying the updated classifier against the live rule-set...")
    live = updatable.current_rules()
    mismatches = 0
    for packet in live.sample_packets(300, seed=11):
        expected = live.match(packet)
        actual = updatable.classify(packet)
        if (expected is None) != (actual is None) or (
            expected is not None and actual.priority != expected.priority
        ):
            mismatches += 1
    print(f"  {mismatches} mismatches out of 300 packets")

    print("\nAnalytical throughput-over-time (Figure 7 shape), 500K-rule scale:")
    series = throughput_over_time(
        total_rules=500_000, update_rate=2_000, retrain_period=120.0,
        training_time=60.0, nuevomatch_throughput=2.4e6,
        remainder_throughput=1.0e6, horizon=600.0, step=60.0,
    )
    print(format_series(
        [int(t) for t, _ in series], [round(v / 1e6, 2) for _, v in series],
        x_label="time s", y_label="throughput Mpps",
    ))
    rate = sustained_update_rate(500_000, 60.0, 2.4e6, 1.0e6)
    print(f"\nSustained update rate at half the speedup (60s training): "
          f"{rate:,.0f} updates/s (paper: ~4,000/s)")


if __name__ == "__main__":
    main()
