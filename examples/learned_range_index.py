#!/usr/bin/env python3
"""Scenario: using the RQ-RMI on its own as a learned range index.

The RQ-RMI is useful beyond packet classification: it answers "which of these
disjoint ranges contains this key?" with a few hundred bytes of neural-network
weights per thousand ranges and a provable worst-case search bound.  This
example indexes a set of numeric ranges directly, inspects the model structure
(stages, error bounds, transition inputs), and demonstrates the correctness
guarantee by exhaustively checking every key of a small domain.

Run with::

    python examples/learned_range_index.py [--ranges 2000]
"""

import argparse

import numpy as np

from repro.analysis import format_kv, format_table
from repro.core.config import RQRMIConfig
from repro.core.rqrmi import RQRMI, RangeSet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranges", type=int, default=2_000)
    parser.add_argument("--domain-bits", type=int, default=32)
    args = parser.parse_args()

    domain = 1 << args.domain_bits
    rng = np.random.default_rng(7)
    points = np.sort(rng.choice(domain, size=2 * args.ranges, replace=False).astype(np.int64))
    ranges = [(int(points[2 * i]), int(points[2 * i + 1])) for i in range(args.ranges)]
    print(f"Indexing {args.ranges} disjoint ranges over a {args.domain_bits}-bit domain...")

    range_set = RangeSet.from_integer_ranges(ranges, domain)
    model = RQRMI.train(range_set, RQRMIConfig(error_threshold=32))

    print()
    print(format_kv({
        "stages": str(model.stage_widths),
        "submodels trained": model.report.submodels_trained,
        "retrain attempts": model.report.retrain_attempts,
        "model size (bytes)": model.size_bytes(),
        "worst-case error bound": model.max_error,
        "training seconds": round(model.report.training_seconds, 2),
    }, title="Trained RQ-RMI"))

    print("\nSample queries (key -> predicted index, bound, found range):")
    rows = []
    for _ in range(8):
        idx = int(rng.integers(0, args.ranges))
        lo, hi = sorted(ranges)[idx]
        key = int(rng.integers(lo, hi + 1))
        lookup = model.query(key)
        rows.append([key, lookup.predicted_index, lookup.error_bound, lookup.index,
                     f"[{lo}, {hi}]"])
    print(format_table(["key", "predicted idx", "bound", "found idx", "true range"], rows))

    print("\nExhaustive correctness check on a small 16-bit instance...")
    small_domain = 1 << 16
    small_points = np.sort(
        np.random.default_rng(1).choice(small_domain, size=200, replace=False).astype(np.int64)
    )
    small_ranges = [(int(small_points[2 * i]), int(small_points[2 * i + 1])) for i in range(100)]
    small_set = RangeSet.from_integer_ranges(small_ranges, small_domain)
    small_model = RQRMI.train(small_set, RQRMIConfig(stage_widths=[1, 4], error_threshold=16))
    wrong = 0
    for key in range(small_domain):
        expected = small_set.locate(small_set.scale_key(key))
        if small_model.query(key).index != expected:
            wrong += 1
    print(f"  checked {small_domain} keys, {wrong} incorrect answers "
          f"(the analytical error bound guarantees 0)")


if __name__ == "__main__":
    main()
