#!/usr/bin/env python3
"""Quickstart: build a ClassificationEngine, batch-classify, save and reload.

Run with::

    python examples/quickstart.py

The script generates a ClassBench-like ACL rule-set, builds a
:class:`~repro.engine.ClassificationEngine` over NuevoMatch with a TupleMerge
remainder, classifies a packet trace in vectorized batches, verifies against
linear search, and round-trips the trained engine through save/load — the
training cost is paid once, the snapshot restores instantly.
"""

import os
import tempfile
import time

from repro import ClassificationEngine, NuevoMatchConfig, generate_classbench
from repro.core.config import RQRMIConfig
from repro.traffic import generate_uniform_trace


def main() -> None:
    print("Generating a 10,000-rule ACL-like rule-set (ClassBench acl1 profile)...")
    rules = generate_classbench("acl1", 10_000, seed=42)
    print(f"  {len(rules)} rules, per-field diversity: "
          f"{ {k: round(v, 2) for k, v in rules.diversity().items()} }")

    print("\nBuilding the engine (NuevoMatch, TupleMerge remainder, error bound 64)...")
    engine = ClassificationEngine.build(
        rules,
        classifier="nm",
        remainder_classifier="tm",
        config=NuevoMatchConfig(
            max_isets=4,
            min_iset_coverage=0.05,
            rqrmi=RQRMIConfig(error_threshold=64),
        ),
    )
    stats = engine.statistics()
    print(f"  iSets: {stats['num_isets']}, coverage: {stats['coverage']:.1%}, "
          f"remainder rules: {stats['remainder_rules']}")
    print(f"  RQ-RMI models: {stats['rqrmi_bytes'] / 1024:.1f} KB, "
          f"max prediction error: {stats['max_error']}")
    print(f"  build time: {stats['build_seconds']:.1f}s "
          f"(training: {stats['training_seconds']:.1f}s)")

    print("\nServing a uniform packet trace in 128-packet batches...")
    trace = generate_uniform_trace(rules, 1_000, seed=7)
    matched = 0
    for report in engine.serve(trace, batch_size=128):
        matched += report.matched
    print(f"  {len(trace)} packets served, {matched} matched")

    print("Verifying against the linear-search oracle...")
    checked = engine.verify(trace)
    print(f"  {checked} packets classified, all matching the oracle")

    result = engine.classify_batch(trace[:1])[0]
    print(f"\nExample lookup for packet {tuple(trace[0])}:")
    print(f"  matched rule id {result.rule.rule_id} (priority {result.rule.priority}, "
          f"action {result.rule.action!r})")
    print(f"  lookup touched {result.trace.model_accesses} model stages, "
          f"{result.trace.rule_accesses} rule entries, "
          f"{result.trace.index_accesses} index nodes")

    print("\nPersisting the trained engine and loading it back...")
    path = os.path.join(tempfile.gettempdir(), "quickstart.engine.json.gz")
    engine.save(path)
    start = time.perf_counter()
    restored = ClassificationEngine.load(path)
    load_seconds = time.perf_counter() - start
    size_kb = os.path.getsize(path) / 1024
    print(f"  snapshot: {size_kb:.1f} KB, restored in {load_seconds:.2f}s "
          f"(vs {stats['build_seconds']:.1f}s to build)")
    same = all(
        (a.rule.rule_id if a.rule else None) == (b.rule.rule_id if b.rule else None)
        for a, b in zip(engine.classify_batch(trace), restored.classify_batch(trace))
    )
    print(f"  restored engine output identical: {same}")
    os.unlink(path)


if __name__ == "__main__":
    main()
