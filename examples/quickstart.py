#!/usr/bin/env python3
"""Quickstart: build NuevoMatch over a synthetic ACL and classify packets.

Run with::

    python examples/quickstart.py

The script generates a ClassBench-like ACL rule-set, builds NuevoMatch with a
TupleMerge remainder, verifies it against linear search, and prints the
structure statistics the paper cares about: iSet coverage, RQ-RMI model size,
error bounds and the memory footprint compared to the stand-alone baseline.
"""

from repro import NuevoMatch, NuevoMatchConfig, generate_classbench
from repro.classifiers import TupleMergeClassifier
from repro.core.config import RQRMIConfig
from repro.traffic import generate_uniform_trace


def main() -> None:
    print("Generating a 10,000-rule ACL-like rule-set (ClassBench acl1 profile)...")
    rules = generate_classbench("acl1", 10_000, seed=42)
    print(f"  {len(rules)} rules, per-field diversity: "
          f"{ {k: round(v, 2) for k, v in rules.diversity().items()} }")

    print("\nBuilding NuevoMatch (TupleMerge remainder, error bound 64)...")
    nm = NuevoMatch.build(
        rules,
        remainder_classifier=TupleMergeClassifier,
        config=NuevoMatchConfig(
            max_isets=4,
            min_iset_coverage=0.05,
            rqrmi=RQRMIConfig(error_threshold=64),
        ),
    )
    stats = nm.statistics()
    print(f"  iSets: {stats['num_isets']}, coverage: {stats['coverage']:.1%}, "
          f"remainder rules: {stats['remainder_rules']}")
    print(f"  RQ-RMI models: {stats['rqrmi_bytes'] / 1024:.1f} KB, "
          f"max prediction error: {stats['max_error']}")
    print(f"  build time: {stats['build_seconds']:.1f}s "
          f"(training: {stats['training_seconds']:.1f}s)")

    print("\nClassifying a uniform packet trace and verifying against linear search...")
    trace = generate_uniform_trace(rules, 1_000, seed=7)
    checked = nm.verify(trace)
    print(f"  {checked} packets classified, all matching the linear-search oracle")

    packet = trace[0]
    result = nm.classify_traced(packet)
    print(f"\nExample lookup for packet {tuple(packet)}:")
    print(f"  matched rule id {result.rule.rule_id} (priority {result.rule.priority}, "
          f"action {result.rule.action!r})")
    print(f"  lookup touched {result.trace.model_accesses} model stages, "
          f"{result.trace.rule_accesses} rule entries, "
          f"{result.trace.index_accesses} remainder-index nodes")

    baseline = TupleMergeClassifier.build(rules)
    nm_bytes = nm.memory_footprint().index_bytes
    tm_bytes = baseline.memory_footprint().index_bytes
    print(f"\nIndex memory footprint: NuevoMatch {nm_bytes / 1024:.1f} KB vs "
          f"TupleMerge {tm_bytes / 1024:.1f} KB "
          f"({tm_bytes / nm_bytes:.1f}x compression)")


if __name__ == "__main__":
    main()
