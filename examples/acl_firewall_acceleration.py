#!/usr/bin/env python3
"""Scenario: accelerating an ACL firewall with many rules (the paper's §5.2).

A virtual firewall holds a large access-control list.  Stand-alone classifiers
(TupleMerge, CutSplit) spill out of the fast CPU caches as the ACL grows; this
example shows how NuevoMatch compresses the index, what that does to modelled
latency/throughput under the paper's cache model, and how the early-termination
single-core mode compares with the two-core parallel mode.

Run with::

    python examples/acl_firewall_acceleration.py [--rules 20000] [--app acl1]
"""

import argparse

from repro import NuevoMatch, NuevoMatchConfig, generate_classbench
from repro.analysis import format_table, geometric_mean
from repro.classifiers import resolve_classifier
from repro.core.config import RQRMIConfig
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch, speedup
from repro.traffic import generate_uniform_trace, generate_zipf_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rules", type=int, default=20_000,
                        help="ACL size (default: 20000)")
    parser.add_argument("--app", default="acl1", help="ClassBench application profile")
    parser.add_argument("--packets", type=int, default=500, help="trace length")
    args = parser.parse_args()

    print(f"Generating {args.rules} {args.app} rules and a uniform trace...")
    rules = generate_classbench(args.app, args.rules, seed=1)
    uniform = generate_uniform_trace(rules, args.packets, seed=2)
    skewed = generate_zipf_trace(rules, args.packets, top3_share=90, seed=2)
    cost_model = CostModel()

    rows = []
    for baseline_name in ("tm", "cs"):
        baseline_cls = resolve_classifier(baseline_name)
        print(f"\nBuilding {baseline_name} and NuevoMatch w/ {baseline_name} remainder...")
        baseline = baseline_cls.build(rules)
        nm = NuevoMatch.build(
            rules,
            remainder_classifier=baseline_cls,
            config=NuevoMatchConfig(
                max_isets=4 if baseline_name == "tm" else 2,
                min_iset_coverage=0.05 if baseline_name == "tm" else 0.25,
                rqrmi=RQRMIConfig(error_threshold=64),
            ),
        )
        nm.verify(rules.sample_packets(200, seed=3))

        base_two_core = evaluate_classifier(baseline, uniform, cost_model, cores=2)
        nm_parallel = evaluate_nuevomatch(nm, uniform, cost_model, mode="parallel")
        nm_single = evaluate_nuevomatch(nm, uniform, cost_model, mode="single")
        parallel_speedup = speedup(nm_parallel, base_two_core)
        skew_model = cost_model.with_locality(0.65)
        skew_speedup = speedup(
            evaluate_nuevomatch(nm, skewed, skew_model, mode="single"),
            evaluate_classifier(baseline, skewed, skew_model, cores=1),
        )

        rows.append([
            baseline_name,
            round(baseline.memory_footprint().index_bytes / 1024, 1),
            round(nm.memory_footprint().index_bytes / 1024, 1),
            f"{nm.coverage:.0%}",
            round(base_two_core.avg_latency_ns, 1),
            round(nm_parallel.avg_latency_ns, 1),
            round(parallel_speedup["throughput"], 2),
            round(nm_single.avg_latency_ns, 1),
            round(skew_speedup["throughput"], 2),
        ])

    print()
    print(format_table(
        ["baseline", "base idx KB", "nm idx KB", "coverage", "base lat ns (2c)",
         "nm lat ns (2c)", "thr speedup (2c)", "nm lat ns (1c)", "thr speedup (zipf90)"],
        rows,
        title=f"ACL acceleration summary ({args.rules} rules, {args.app})",
    ))
    print("\nGeometric-mean throughput speedup across baselines: "
          f"{geometric_mean([row[6] for row in rows]):.2f}x (uniform traffic, 2 cores)")


if __name__ == "__main__":
    main()
