#!/usr/bin/env python3
"""Scenario: accelerating an IP forwarding table (the paper's Figure 10).

Forwarding tables match a single field (destination IP) with nested prefixes.
This example builds a Stanford-backbone-like table, shows the iSet coverage
curve Table 2's last row reports (a single field needs 2-3 iSets for >90%),
and compares TupleMerge with NuevoMatch-accelerated TupleMerge under the cache
cost model.

Run with::

    python examples/stanford_forwarding.py [--rules 50000]
"""

import argparse

from repro import NuevoMatch, NuevoMatchConfig
from repro.analysis import format_series, format_table
from repro.classifiers import TupleMergeClassifier
from repro.core.config import RQRMIConfig
from repro.core.isets import partition_isets
from repro.rules import generate_stanford_backbone
from repro.simulation import CostModel, evaluate_classifier, evaluate_nuevomatch, speedup
from repro.traffic import generate_uniform_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rules", type=int, default=50_000,
                        help="forwarding entries (the real tables hold ~180K)")
    parser.add_argument("--packets", type=int, default=500)
    args = parser.parse_args()

    print(f"Generating a backbone-like forwarding table with {args.rules} prefixes...")
    table = generate_stanford_backbone(args.rules, seed=0)

    partition = partition_isets(table, max_isets=4)
    coverage = [round(100 * value, 1) for value in partition.cumulative_coverage()]
    print()
    print(format_series(
        list(range(1, len(coverage) + 1)), coverage,
        x_label="iSets", y_label="coverage %",
        title="Cumulative iSet coverage (paper Table 2, Stanford row: 57.8 / 91.6 / 96.5 / 98.2)",
    ))

    print("\nBuilding TupleMerge and NuevoMatch w/ TupleMerge...")
    baseline = TupleMergeClassifier.build(table)
    nm = NuevoMatch.build(
        table,
        remainder_classifier=TupleMergeClassifier,
        config=NuevoMatchConfig(
            max_isets=4, min_iset_coverage=0.05, rqrmi=RQRMIConfig(error_threshold=64)
        ),
    )
    nm.verify(table.sample_packets(200, seed=1))

    trace = generate_uniform_trace(table, args.packets, seed=2)
    cost_model = CostModel()
    base_report = evaluate_classifier(baseline, trace, cost_model, cores=2)
    nm_report = evaluate_nuevomatch(nm, trace, cost_model, mode="parallel")
    factors = speedup(nm_report, base_report)

    print()
    print(format_table(
        ["classifier", "index KB", "latency ns", "throughput Mpps"],
        [
            ["TupleMerge", round(baseline.memory_footprint().index_bytes / 1024, 1),
             round(base_report.avg_latency_ns, 1),
             round(base_report.throughput_pps / 1e6, 2)],
            ["NuevoMatch w/ tm", round(nm.memory_footprint().index_bytes / 1024, 1),
             round(nm_report.avg_latency_ns, 1),
             round(nm_report.throughput_pps / 1e6, 2)],
        ],
        title="Two-core comparison (paper: 3.5x throughput, 7.5x latency at 180K rules)",
    ))
    print(f"\nSpeedup: {factors['throughput']:.2f}x throughput, "
          f"{factors['latency']:.2f}x latency; coverage {nm.coverage:.1%} "
          f"with {nm.num_isets} iSets")


if __name__ == "__main__":
    main()
