#!/usr/bin/env python3
"""Network serving: an AsyncServer, concurrent clients, live updates.

Run with::

    python examples/async_client.py

The script builds a sharded + flow-cached engine stack, serves it in-process
over the asyncio TCP protocol (ephemeral port), then plays both sides of the
wire: a burst of concurrent ``classify`` requests that the server coalesces
into micro-batches, an online ``insert`` whose effect is visible to the very
next lookup (the eviction-before-ack contract, over the network), and a
``stats`` call showing what the request batcher actually did.

Against a server started from the CLI, only the client half applies::

    repro serve rules.txt --shards 2 --cache-size 4096 --listen 127.0.0.1:8590
    # then: await AsyncClient.connect("127.0.0.1", 8590)
"""

import asyncio

from repro import generate_classbench
from repro.rules.rule import Rule
from repro.serving import AsyncClient, AsyncServer, CachedEngine, ShardedEngine
from repro.workloads import make_trace


async def main() -> None:
    print("Building a 2-shard TupleMerge stack behind a 1K-entry flow cache...")
    rules = generate_classbench("acl1", 2_000, seed=7)
    engine = CachedEngine(
        ShardedEngine.build(rules, shards=2, classifier="tm"), capacity=1024
    )

    async with AsyncServer(engine, max_batch=64, max_delay_us=200) as server:
        await server.start("127.0.0.1", 0)  # port 0 = ephemeral
        print(f"  serving on {server.host}:{server.port}\n")

        async with await AsyncClient.connect(server.host, server.port) as client:
            # Concurrent classifies on one connection: they are pipelined by
            # request id and coalesced server-side into shared micro-batches.
            trace = make_trace("zipf", rules, 500, seed=3, skew=95)
            print(f"Classifying {len(trace)} zipf-95 packets concurrently...")
            responses = await asyncio.gather(
                *(client.classify(packet) for packet in trace)
            )
            matched = sum(response["matched"] for response in responses)
            print(f"  {matched}/{len(trace)} packets matched a rule")

            # An online update: once insert() returns, the very next classify
            # must see the new rule — stale flow-cache entries were evicted
            # before the server acknowledged the insert.
            packet = tuple(trace[0])
            before = await client.classify(packet)
            override = Rule(
                tuple((value, value) for value in packet),
                priority=0,
                rule_id=1_000_000,
            )
            await client.insert(override)
            after = await client.classify(packet)
            print(f"\nOnline update: winner {before['rule_id']} -> "
                  f"{after['rule_id']} (priority {after['priority']})")
            await client.remove(override.rule_id)

            stats = await client.stats()
            batcher = stats["server"]["batcher"]
            print("\nCoalescing stats:")
            print(f"  {batcher['requests']} requests in "
                  f"{batcher['batches']} micro-batches "
                  f"(mean size {batcher['mean_batch_size']}, "
                  f"largest {batcher['max_batch_seen']})")
            print(f"  classify p50 {stats['server']['p50_us']:.0f} us, "
                  f"p99 {stats['server']['p99_us']:.0f} us")
            cache = stats["engine"]["cache"]
            probes = cache["hits"] + cache["misses"]
            print(f"  flow cache: {cache['hits']} hits / "
                  f"{probes} probes (hit rate {cache['hit_rate']:.1%})")

    engine.close()


if __name__ == "__main__":
    asyncio.run(main())
