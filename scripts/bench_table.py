#!/usr/bin/env python3
"""Render the BENCH json results into the README's benchmark table.

Benchmarks that matter to the serving/build story emit machine-readable
payloads into ``benchmarks/results/<experiment>.json`` (the ``BENCH`` line
printed on stdout holds the same document).  This script turns whichever
results exist into one markdown table, so the README's numbers are always
regenerated, never hand-typed:

    python scripts/bench_table.py            # print the table
    python scripts/bench_table.py --write    # rewrite the README section
    python scripts/bench_table.py --check    # exit 1 if README is stale

The README section is delimited by ``<!-- BENCH_TABLE_START -->`` /
``<!-- BENCH_TABLE_END -->`` markers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
README = REPO_ROOT / "README.md"
START = "<!-- BENCH_TABLE_START -->"
END = "<!-- BENCH_TABLE_END -->"


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def _rows_training_pipeline(data: dict) -> list[tuple[str, str, str]]:
    config = data.get("config", {})
    summary = data["summary"]
    name = f"training pipeline ({config.get('ruleset', '?')})"
    return [
        (name, "parallel build (jobs=4) vs serial loop",
         f"{_fmt(summary['parallel_speedup'])}x faster"),
        (name, "warm-start retrain vs cold retrain",
         f"{_fmt(summary['warm_speedup'])}x faster"),
        (name, "retrain-to-swap latency, warm vs cold",
         f"{_fmt(summary['retrain_to_swap_speedup'])}x faster "
         f"({_fmt(summary['retrain_to_swap_warm_s'] * 1e3, 0)} ms)"),
    ]


def _rows_sharded_scaling(data: dict) -> list[tuple[str, str, str]]:
    config = data.get("config", {})
    summary = data.get("summary", {})
    series = data.get("modelled", {}).get("series", [])
    if not series:
        return []
    base = series[0]
    best = max(series, key=lambda row: row.get("throughput_pps", 0.0))
    name = (f"sharded scaling ({config.get('application')}/"
            f"{config.get('rules')})")
    speedup = best["throughput_pps"] / max(base["throughput_pps"], 1.0)
    rows = [
        (name, f"modelled throughput at {best['shards']} shards vs 1",
         f"{_fmt(speedup)}x "
         f"({_fmt(best['throughput_pps'] / 1e6)} Mpps)"),
    ]
    if "workers_scaling" in summary:
        rows.append(
            (name,
             f"workers executor, measured, 8 vs 1 shards "
             f"({config.get('cores', '?')} cores)",
             f"{_fmt(summary['workers_scaling'])}x "
             f"({_fmt(summary['workers_top_pps'] / 1e3, 1)} kpps)"),
        )
    if "cached_columnar_pps" in summary:
        rows.append(
            (name,
             "cached columnar serve path, measured, warm zipf-95 single shard",
             f"{_fmt(summary['cached_columnar_pps'] / 1e6)} Mpps "
             f"({_fmt(summary['columnar_model_gap'], 1)}x of modelled)"),
        )
    return rows


def _rows_flowcache_locality(data: dict) -> list[tuple[str, str, str]]:
    config = data.get("config", {})
    series = data.get("measured", {}).get("series", [])
    rows = []
    name = (f"flow cache ({config.get('application')}/{config.get('rules')}, "
            f"{config.get('cache_size')} entries)")
    for entry in series:
        label = entry.get("trace") or entry.get("label") or "?"
        cached = entry.get("cached", {})
        if "zipf" in str(label) and "95" in str(label) and cached:
            rows.append((name, f"hit rate on {label}",
                         f"{cached.get('hit_rate', 0.0):.0%}"))
    if not rows and series:
        cached = series[-1].get("cached", {})
        rows.append((name, "hit rate (most skewed trace)",
                     f"{cached.get('hit_rate', 0.0):.0%}"))
    return rows


def _rows_server_throughput(data: dict) -> list[tuple[str, str, str]]:
    config = data.get("config", {})
    summary = data["summary"]
    name = (f"network serving ({config.get('application')}/"
            f"{config.get('rules')}, {config.get('connections')} conns)")
    rows = [
        (name, "request coalescing vs one-request-per-call",
         f"{_fmt(summary['coalescing_speedup'])}x faster "
         f"({_fmt(summary['coalesced_best_rps'] / 1e3, 1)} krps)"),
    ]
    if "wire_v2_speedup" in summary:
        rows.append(
            (name,
             f"binary wire v2 vs JSON, batched flow-cached serving "
             f"(batch {config.get('wire_batch', '?')})",
             f"{_fmt(summary['wire_v2_speedup'])}x faster "
             f"({_fmt(summary['wire_v2_rps'] / 1e3, 1)} krps)"),
        )
    return rows


def _rows_overload_control(data: dict) -> list[tuple[str, str, str]]:
    config = data.get("config", {})
    summary = data["summary"]
    slo_ms = summary["slo_p99_us"] / 1e3
    burst_x = config.get("burst_pps", 0.0) / max(summary["capacity_pps"], 1.0)
    name = (f"overload control (SLO p99 {slo_ms:.0f} ms, "
            f"{burst_x:.0f}x-capacity burst)")
    return [
        (name, "adaptive p99 of admitted traffic under burst",
         f"{_fmt(summary['adaptive_burst_p99_us'] / 1e3, 1)} ms "
         f"(static: {_fmt(summary['static_burst_p99_us'] / 1e3, 0)} ms)"),
        (name, "adaptive shed fraction, burst vs steady",
         f"{summary['adaptive_burst_shed_fraction']:.0%} vs "
         f"{summary['adaptive_steady_shed_fraction']:.0%}"),
        (name, "p99 after the burst clears (recovery)",
         f"{_fmt(summary['adaptive_recovery_p99_us'] / 1e3, 1)} ms"),
    ]


_RENDERERS = {
    "training_pipeline": _rows_training_pipeline,
    "sharded_scaling": _rows_sharded_scaling,
    "flowcache_locality": _rows_flowcache_locality,
    "server_throughput": _rows_server_throughput,
    "overload_control": _rows_overload_control,
}


def build_table(results_dir: Path = RESULTS_DIR) -> str:
    rows: list[tuple[str, str, str]] = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        renderer = _RENDERERS.get(path.stem)
        if renderer is None:
            continue
        try:
            rows.extend(renderer(data))
        except KeyError:
            continue
    if not rows:
        return "_No benchmark results yet — run `pytest benchmarks/ -s`._"
    lines = [
        "| benchmark | metric | result |",
        "|---|---|---|",
    ]
    for name, metric, result in rows:
        lines.append(f"| {name} | {metric} | {result} |")
    lines.append("")
    lines.append("_Generated by `python scripts/bench_table.py --write` from "
                 "`benchmarks/results/*.json` (REPRO_SCALE=ci, single-core "
                 "CI runner; regenerate with `pytest benchmarks/ -s`)._")
    return "\n".join(lines)


def _spliced_readme(table: str) -> str:
    text = README.read_text()
    if START not in text or END not in text:
        raise SystemExit(
            f"README.md is missing the {START} / {END} markers"
        )
    head, rest = text.split(START, 1)
    _, tail = rest.split(END, 1)
    return f"{head}{START}\n{table}\n{END}{tail}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help="rewrite the README benchmark section in place")
    mode.add_argument("--check", action="store_true",
                      help="exit non-zero when the README section is stale")
    args = parser.parse_args(argv)

    table = build_table()
    if args.write:
        README.write_text(_spliced_readme(table))
        print(f"updated {README}")
        return 0
    if args.check:
        if README.read_text() != _spliced_readme(table):
            print("README benchmark table is stale; run "
                  "`python scripts/bench_table.py --write`", file=sys.stderr)
            return 1
        print("README benchmark table is up to date")
        return 0
    print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
