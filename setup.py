"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so legacy flows (``python setup.py develop``, offline environments whose
setuptools predates built-in ``bdist_wheel``) can still install the package;
``pip install -e .`` is the supported path.
"""

from setuptools import setup

setup()
